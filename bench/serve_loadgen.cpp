// Extension bench: SLO-vs-QPS curve of the continuous-batching serve layer.
//
// Probes the engine's batch-saturated capacity, then sweeps offered load
// around it with the deterministic discrete-event loadgen
// (serve::simulate_load): Zipf query traffic, Poisson arrivals, the real
// pipeline's simulated seconds as service times. The output is the classic
// queueing curve — flat latency at low load, a knee near capacity, and
// runaway p99 (or rejections, with --queue-cap) beyond it.
//
// A second mode, --drift, swaps the open-loop queue for a two-phase drift
// experiment (paper Sec 4.1.2): phase A serves traffic matching the
// popularity profile the placement was built for, phase B rotates the Zipf
// ranking. Run once with the adaptive controller off and once with
// --adapt=copies-equivalent options, and emit per-batch QPS + balance
// curves so the before/after effect of online copy adjustment is a figure,
// not a log line.
//
// Usage: serve_loadgen [--out serve_loadgen.json] [--requests N]
//                      [--max-batch B] [--deadline-ms D] [--queue-cap C]
//                      [--drift] [--shift S] [--drift-batches P]
//                      [--adapt-window W]
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "data/query_workload.hpp"
#include "obs/json.hpp"
#include "serve/executors.hpp"
#include "serve/loadgen.hpp"

using namespace upanns;
using namespace upanns::bench;

namespace {

struct DriftModeResult {
  double steady_qps = 0;       ///< post-drift steady state (last half of B)
  double steady_balance = 0;   ///< mean balance_ratio over the same window
  std::size_t actions = 0;
  std::uint64_t adapt_bytes = 0;
  std::uint64_t image_bytes = 0;
};

/// Queries jittered around the centroids of Zipf-ranked *trained clusters*
/// (ranking rotated by `shift`). The stock region-based workload generator
/// deliberately decorrelates storage regions from clusters (the synthetic
/// base set shuffles ids), so rotating region popularity barely moves the
/// cluster probe histogram; drifting at cluster granularity is what actually
/// re-shapes per-DPU load, which is the phenomenon this bench measures.
data::Dataset zipf_cluster_queries(const ivf::IvfIndex& index, std::size_t n,
                                   double zipf_exp, std::size_t shift,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  common::ZipfSampler zipf(index.n_clusters(), zipf_exp);
  data::Dataset q;
  q.dim = index.dim();
  q.n = n;
  q.values.resize(n * q.dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c =
        (zipf.sample(rng) + shift) % index.n_clusters();
    const float* p = index.centroid(c);
    double mag = 0;
    for (std::size_t d = 0; d < q.dim; ++d) mag += std::abs(p[d]);
    mag /= static_cast<double>(q.dim);
    const double sigma = 0.05 * std::max(mag, 1e-3);
    float* out = q.row(i);
    for (std::size_t d = 0; d < q.dim; ++d) {
      out[d] = p[d] + static_cast<float>(rng.gaussian(0.0, sigma));
    }
  }
  return q;
}

int run_drift(const std::string& out_path, std::size_t shift,
              std::size_t phase_batches, std::size_t adapt_window) {
  metrics::banner("Serve", "Adaptive replication under popularity drift");

  Config cfg;
  cfg.family = data::DatasetFamily::kSiftLike;
  cfg.n = 100'000;
  cfg.scaled_ivf = 256;
  cfg.paper_ivf = 4096;
  cfg.n_dpus = 64;
  cfg.n_queries = 256;
  // A narrow probe set concentrates each query's work on few clusters, so a
  // popularity shift actually re-shapes the per-DPU load instead of being
  // smeared across an nprobe-wide slice of the fleet.
  cfg.nprobe = 8;
  Context& ctx = context_for(cfg);

  const std::size_t batch_n = 256;
  const double zipf_exp = 1.5;
  // History (placement input) and phase A draw from the same cluster
  // popularity ranking; phase B rotates it by `shift` clusters.
  const data::Dataset history_q =
      zipf_cluster_queries(*ctx.index, 2048, zipf_exp, 0, cfg.seed + 40);
  const ivf::ClusterStats stats = ivf::collect_stats(
      *ctx.index, ivf::filter_batch(*ctx.index, history_q, cfg.nprobe));

  auto batches = core::split_batches(
      zipf_cluster_queries(*ctx.index, phase_batches * batch_n, zipf_exp, 0,
                           cfg.seed + 41),
      batch_n);
  for (auto& b : core::split_batches(
           zipf_cluster_queries(*ctx.index, phase_batches * batch_n,
                                zipf_exp, shift, cfg.seed + 42),
           batch_n)) {
    batches.push_back(std::move(b));
  }

  metrics::FigureSink sink(
      "serve_drift",
      {"mode", "phase", "batch", "qps", "balance", "adapt_ms", "action"});

  DriftModeResult results[2];
  const core::AdaptMode modes[2] = {core::AdaptMode::kOff,
                                    core::AdaptMode::kCopies};
  for (int m = 0; m < 2; ++m) {
    core::UpAnnsEngine engine(*ctx.index, stats, upanns_options(cfg));
    core::BatchPipelineOptions popts;
    popts.overlap = true;
    popts.book_query_latency = false;
    popts.adapt = modes[m];
    popts.adaptive.window_batches = adapt_window;
    core::BatchStream stream(engine, popts);

    const char* mode_name = core::adapt_mode_name(modes[m]);
    double steady_q = 0, steady_s = 0, steady_bal = 0;
    std::size_t steady_n = 0;
    DriftModeResult& res = results[m];
    for (std::size_t i = 0; i < batches.size(); ++i) {
      const auto& slot = stream.run_batch(batches[i]);
      const double seconds = slot.report.times.total() + slot.patch_seconds +
                             slot.adapt_seconds;
      const double qps = static_cast<double>(batches[i].n) / seconds;
      const double balance =
          slot.report.pim ? slot.report.pim->balance_ratio : 0.0;
      const bool drifted = i >= phase_batches;
      if (slot.adapt_action != core::AdaptAction::kNone) {
        ++res.actions;
        res.adapt_bytes += slot.adapt_bytes;
      }
      // Steady state: the last half of the drifted phase, after the
      // controller (when on) had time to observe and act.
      if (i >= phase_batches + (phase_batches + 1) / 2) {
        steady_q += static_cast<double>(batches[i].n);
        steady_s += seconds;
        steady_bal += balance;
        ++steady_n;
      }
      obs::JsonWriter d;
      d.begin_object();
      d.kv("adapt_bytes", slot.adapt_bytes);
      d.kv("drift", slot.adapt_drift);
      d.end_object();
      sink.add_row({mode_name, drifted ? "drift" : "calm",
                    std::to_string(i), metrics::Table::fmt(qps, 0),
                    metrics::Table::fmt(balance, 3),
                    metrics::Table::fmt(slot.adapt_seconds * 1e3, 3),
                    core::adapt_action_name(slot.adapt_action)},
                   d.take());
    }
    stream.finish();
    res.steady_qps = steady_q / steady_s;
    res.steady_balance = steady_bal / static_cast<double>(steady_n);
    res.image_bytes = engine.load_image_bytes();
  }
  sink.finish(out_path);

  const DriftModeResult& off = results[0];
  const DriftModeResult& on = results[1];
  const double gain = (on.steady_qps - off.steady_qps) / off.steady_qps;
  std::printf("\npost-drift steady state (last %zu batches):\n",
              phase_batches - (phase_batches + 1) / 2);
  std::printf("  adapt=off    %8.0f qps   balance %.3f\n", off.steady_qps,
              off.steady_balance);
  std::printf("  adapt=copies %8.0f qps   balance %.3f   (%+.1f%% qps, "
              "%zu actions)\n",
              on.steady_qps, on.steady_balance, gain * 100.0, on.actions);
  std::printf("  copy-adjust patches: %llu bytes = %.2f%% of the full MRAM "
              "image (%llu bytes)\n",
              static_cast<unsigned long long>(on.adapt_bytes),
              100.0 * static_cast<double>(on.adapt_bytes) /
                  static_cast<double>(on.image_bytes),
              static_cast<unsigned long long>(on.image_bytes));
  std::printf("\nExpected shape: both modes match in the calm phase; after "
              "the shift, adapt=off settles at a degraded QPS while "
              "adapt=copies recovers once the controller re-replicates the "
              "newly hot clusters.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::size_t n_requests = 4000;
  serve::BatchPolicy policy;
  policy.max_batch = 64;
  policy.deadline_seconds = 2e-3;
  std::size_t queue_cap = 0;
  bool drift = false;
  std::size_t shift = 96;
  std::size_t drift_batches = 12;
  std::size_t adapt_window = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next();
    } else if (a == "--requests") {
      n_requests = std::strtoull(next(), nullptr, 10);
    } else if (a == "--max-batch") {
      policy.max_batch = std::strtoull(next(), nullptr, 10);
    } else if (a == "--deadline-ms") {
      policy.deadline_seconds = std::strtod(next(), nullptr) * 1e-3;
    } else if (a == "--queue-cap") {
      queue_cap = std::strtoull(next(), nullptr, 10);
    } else if (a == "--drift") {
      drift = true;
    } else if (a == "--shift") {
      shift = std::strtoull(next(), nullptr, 10);
    } else if (a == "--drift-batches") {
      drift_batches = std::strtoull(next(), nullptr, 10);
    } else if (a == "--adapt-window") {
      adapt_window = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  if (drift) {
    if (drift_batches < 2 || adapt_window == 0) {
      std::fprintf(stderr,
                   "--drift-batches must be >= 2 and --adapt-window >= 1\n");
      return 2;
    }
    return run_drift(out_path, shift, drift_batches, adapt_window);
  }
  if (policy.max_batch == 0 || !(policy.deadline_seconds > 0)) {
    std::fprintf(stderr, "--max-batch and --deadline-ms must be positive\n");
    return 2;
  }

  metrics::banner("Serve", "Continuous batching under open-loop load");

  Config cfg;
  cfg.family = data::DatasetFamily::kSiftLike;
  cfg.n = 100'000;
  cfg.scaled_ivf = 256;
  cfg.paper_ivf = 4096;
  cfg.n_dpus = 64;
  cfg.n_queries = 512;  // Zipf query pool the loadgen cycles through
  cfg.nprobe = 32;
  Context& ctx = context_for(cfg);
  auto backend = make_backend(core::BackendKind::kUpAnns, cfg);
  auto& up = static_cast<core::UpAnnsBackend&>(*backend);

  core::BatchStream stream(up.engine(),
                           {.overlap = true, .book_query_latency = false});
  const serve::BatchExecutor exec = serve::stream_executor(stream);

  // Capacity probe: one saturated batch gives the max sustainable rate of
  // the single-executor server (batch fully formed, no deadline waits).
  data::Dataset probe;
  probe.dim = ctx.workload.queries.dim;
  probe.n = std::min<std::size_t>(policy.max_batch, ctx.workload.queries.n);
  probe.values.assign(
      ctx.workload.queries.values.begin(),
      ctx.workload.queries.values.begin() + probe.n * probe.dim);
  const double probe_seconds = exec(probe).sim_seconds;
  stream.finish();
  const double capacity_qps =
      static_cast<double>(probe.n) / probe_seconds;
  std::printf("saturated batch: %zu queries in %.3f ms -> capacity %.0f "
              "qps\n\n",
              probe.n, probe_seconds * 1e3, capacity_qps);

  metrics::FigureSink sink(
      "serve_loadgen",
      {"load", "offered_qps", "achieved_qps", "p50_ms", "p99_ms", "fill",
       "rejected", "batches"});
  for (const double mult : {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5}) {
    serve::LoadgenOptions o;
    o.offered_qps = mult * capacity_qps;
    o.n_requests = n_requests;
    o.policy = policy;
    o.queue_capacity = queue_cap;
    o.seed = 42;  // same arrival sequence (scaled) at every load point
    const serve::LoadgenResult r =
        serve::simulate_load(ctx.workload.queries, exec, o);
    stream.finish();

    obs::JsonWriter d;
    d.begin_object();
    d.kv("mean_seconds", r.mean);
    d.kv("max_seconds", r.max);
    d.kv("mean_queue_wait_seconds", r.mean_queue_wait);
    d.kv("full_closes", static_cast<std::uint64_t>(r.full_closes));
    d.kv("deadline_closes", static_cast<std::uint64_t>(r.deadline_closes));
    d.kv("completed", static_cast<std::uint64_t>(r.n_completed));
    d.end_object();
    sink.add_row({metrics::Table::fmt(mult, 2),
                  metrics::Table::fmt(r.offered_qps, 0),
                  metrics::Table::fmt(r.achieved_qps, 0),
                  metrics::Table::fmt(r.p50 * 1e3, 3),
                  metrics::Table::fmt(r.p99 * 1e3, 3),
                  metrics::Table::fmt(r.mean_batch_fill, 3),
                  std::to_string(r.n_rejected),
                  std::to_string(r.n_batches)},
                 d.take());
  }
  sink.finish(out_path);
  std::printf("\nExpected shape: latency flat below the knee (deadline-"
              "dominated), p99 rising steeply once offered load crosses the "
              "saturated-batch capacity.\n");
  return 0;
}
