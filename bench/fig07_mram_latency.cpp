// Figure 7: MRAM read latency vs transfer size. Expected shape: latency
// grows slowly from 8 B to ~256 B (setup-dominated) and almost linearly
// beyond — the knee that motivates the 16-vector default read size.
#include "bench_common.hpp"
#include "pim/cost_model.hpp"

using namespace upanns;

int main() {
  metrics::banner("Figure 7", "MRAM read latency vs transfer size");
  metrics::Table table({"bytes", "latency_cycles", "latency_ns",
                        "cycles_per_byte"});
  for (std::size_t bytes = 8; bytes <= 2048; bytes *= 2) {
    const double cycles = pim::DpuCostModel::mram_dma_cycles(bytes);
    table.add_row({std::to_string(bytes), metrics::Table::fmt(cycles, 1),
                   metrics::Table::fmt(cycles / hw::kDpuFreqHz * 1e9, 1),
                   metrics::Table::fmt(cycles / static_cast<double>(bytes), 2)});
  }
  table.print();
  const double r_small = pim::DpuCostModel::mram_dma_cycles(256) /
                         pim::DpuCostModel::mram_dma_cycles(8);
  const double r_large = pim::DpuCostModel::mram_dma_cycles(2048) /
                         pim::DpuCostModel::mram_dma_cycles(256);
  std::printf("\n8B->256B latency ratio: %.2fx (setup-dominated); "
              "256B->2048B: %.2fx (near-linear)\n", r_small, r_large);
  return 0;
}
