// Host wall-clock throughput of the serving loop (NOT simulated seconds).
//
// Every other bench reports the cost model's simulated time; this one times
// how fast the *simulator itself* serves a fixed workload on the host CPU —
// the number the zero-allocation hot path (scratch arenas, borrowed MRAM
// views, launch-object reuse) is meant to improve. Four serve variants run
// over the same pre-built index: single-host and 3-host, each with batch
// overlap on and off (overlap changes time accounting only, so its host
// cost should be identical — a useful sanity axis).
//
// Output: BENCH_host.json (override with --out) with top-level
// `wall_seconds` / `queries_per_second` covering the whole serve phase and
// a per-stage breakdown under `stages`, each stage carrying its own
// wall_seconds + queries_per_second. `--quick` shrinks the workload for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "core/multihost.hpp"
#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"

using namespace upanns;
using namespace upanns::bench;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct StageResult {
  double wall_seconds = 0;
  std::size_t queries = 0;

  double qps() const {
    return wall_seconds > 0 ? static_cast<double>(queries) / wall_seconds : 0;
  }
};

void write_stage(obs::JsonWriter& w, const char* name, const StageResult& r) {
  w.key(name).begin_object();
  w.kv("wall_seconds", r.wall_seconds);
  w.kv("queries_per_second", r.qps());
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_host.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  Config cfg;
  cfg.family = data::DatasetFamily::kSiftLike;
  cfg.n = quick ? 40'000 : 120'000;
  cfg.scaled_ivf = quick ? 128 : 256;
  cfg.paper_ivf = 4096;
  cfg.n_dpus = quick ? 32 : 64;
  cfg.n_queries = quick ? 256 : 768;
  cfg.nprobe = quick ? 16 : 32;
  const std::size_t batch = quick ? 64 : 128;
  const int reps = quick ? 1 : 3;

  metrics::banner("HostThroughput",
                  std::string("Host wall-clock of the serving loop (") +
                      (quick ? "quick" : "full") + " workload)");

  const double t_build0 = now_seconds();
  Context& ctx = context_for(cfg);
  StageResult build;
  build.wall_seconds = now_seconds() - t_build0;
  build.queries = 0;

  const auto batches = core::split_batches(ctx.workload.queries, batch);
  const std::size_t queries_per_rep = ctx.workload.queries.n;
  const core::UpAnnsOptions opts = upanns_options(cfg);

  // --- Single host: one engine, one BatchPipeline per accounting mode.
  // The pipeline object persists across repetitions, so reps >= 2 time the
  // warm (allocation-free) path; rep 1 includes kernel-pool construction.
  const double t_load0 = now_seconds();
  auto backend = make_backend(core::BackendKind::kUpAnns, cfg, &opts);
  auto& engine = static_cast<core::UpAnnsBackend&>(*backend).engine();
  const double engine_load_seconds = now_seconds() - t_load0;

  StageResult single_overlap, single_serial;
  core::BatchPipelineReport last_single;
  {
    core::BatchPipeline pl(engine, {.overlap = true});
    const double t0 = now_seconds();
    for (int r = 0; r < reps; ++r) last_single = pl.run(batches);
    single_overlap.wall_seconds = now_seconds() - t0;
    single_overlap.queries = queries_per_rep * reps;
  }
  {
    core::BatchPipeline pl(engine, {.overlap = false});
    const double t0 = now_seconds();
    for (int r = 0; r < reps; ++r) pl.run(batches);
    single_serial.wall_seconds = now_seconds() - t0;
    single_serial.queries = queries_per_rep * reps;
  }

  // --- Multi host: 3-way cluster shard under one coordinator.
  core::MultiHostOptions mh_opts;
  mh_opts.n_hosts = 3;
  mh_opts.per_host = opts;
  core::MultiHostUpAnns multi(*ctx.index, ctx.stats, mh_opts);

  StageResult multi_overlap, multi_serial;
  {
    core::MultiHostBatchPipeline pl(multi, {.overlap = true});
    const double t0 = now_seconds();
    for (int r = 0; r < reps; ++r) pl.run(batches);
    multi_overlap.wall_seconds = now_seconds() - t0;
    multi_overlap.queries = queries_per_rep * reps;
  }
  {
    core::MultiHostBatchPipeline pl(multi, {.overlap = false});
    const double t0 = now_seconds();
    for (int r = 0; r < reps; ++r) pl.run(batches);
    multi_serial.wall_seconds = now_seconds() - t0;
    multi_serial.queries = queries_per_rep * reps;
  }

  StageResult serve;  // the whole serve phase (everything but the build)
  serve.wall_seconds = single_overlap.wall_seconds +
                       single_serial.wall_seconds +
                       multi_overlap.wall_seconds + multi_serial.wall_seconds;
  serve.queries = single_overlap.queries + single_serial.queries +
                  multi_overlap.queries + multi_serial.queries;

  metrics::Table table({"stage", "wall_s", "host_qps"});
  const auto row = [&](const char* name, const StageResult& r) {
    table.add_row({name, metrics::Table::fmt(r.wall_seconds, 3),
                   metrics::Table::fmt(r.qps(), 1)});
  };
  row("build(index+workload)", build);
  const auto sub = [&](const char* name, double seconds) {
    table.add_row({name, metrics::Table::fmt(seconds, 3), "-"});
  };
  sub("  build/data_gen", ctx.data_gen_seconds);
  sub("  build/coarse_kmeans", ctx.build_stats.kmeans_seconds);
  sub("  build/coarse_assign", ctx.build_stats.assign_seconds);
  sub("  build/residual", ctx.build_stats.residual_seconds);
  sub("  build/pq_train", ctx.build_stats.pq_train_seconds);
  sub("  build/encode", ctx.build_stats.encode_seconds);
  sub("  build/workload", ctx.workload_seconds);
  sub("  build/stats", ctx.stats_seconds);
  sub("  build/engine_load", engine_load_seconds);
  row("single_host_overlap", single_overlap);
  row("single_host_serial", single_serial);
  row("multi_host_overlap", multi_overlap);
  row("multi_host_serial", multi_serial);
  row("serve_total", serve);
  table.print();
  std::printf("\nSimulated QPS of the last single-host run: %.1f "
              "(unchanged by host-side speedups)\n",
              last_single.qps);

  obs::JsonWriter w;
  w.begin_object();
  obs::append_provenance(w);
  w.kv("schema", "upanns.bench_host.v2");
  w.kv("quick", quick);
  w.key("config").begin_object();
  w.kv("n", static_cast<std::uint64_t>(cfg.n));
  w.kv("n_dpus", static_cast<std::uint64_t>(cfg.n_dpus));
  w.kv("n_queries", static_cast<std::uint64_t>(cfg.n_queries));
  w.kv("nprobe", static_cast<std::uint64_t>(cfg.nprobe));
  w.kv("batch", static_cast<std::uint64_t>(batch));
  w.kv("reps", static_cast<std::int64_t>(reps));
  w.end_object();
  w.kv("wall_seconds", serve.wall_seconds);
  w.kv("queries_per_second", serve.qps());
  w.kv("simulated_qps", last_single.qps);
  w.key("stages").begin_object();
  w.key("build").begin_object();
  w.kv("wall_seconds", build.wall_seconds);
  w.kv("queries_per_second", build.qps());
  // Where the build wall went (schema v2): index training dominates; the
  // workload/stats substages cover query generation and frequency history.
  w.key("substages").begin_object();
  w.kv("data_gen_seconds", ctx.data_gen_seconds);
  w.kv("coarse_kmeans_seconds", ctx.build_stats.kmeans_seconds);
  w.kv("coarse_assign_seconds", ctx.build_stats.assign_seconds);
  w.kv("residual_seconds", ctx.build_stats.residual_seconds);
  w.kv("pq_train_seconds", ctx.build_stats.pq_train_seconds);
  w.kv("encode_seconds", ctx.build_stats.encode_seconds);
  w.kv("workload_seconds", ctx.workload_seconds);
  w.kv("stats_seconds", ctx.stats_seconds);
  w.kv("engine_load_seconds", engine_load_seconds);
  w.end_object();
  w.end_object();
  write_stage(w, "single_host_overlap", single_overlap);
  write_stage(w, "single_host_serial", single_serial);
  write_stage(w, "multi_host_overlap", multi_overlap);
  write_stage(w, "multi_host_serial", multi_serial);
  w.end_object();
  w.end_object();

  std::ofstream f(out_path);
  f << w.str() << "\n";
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
