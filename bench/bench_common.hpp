// Shared harness for the figure-reproduction benches.
//
// Scaling methodology (see DESIGN.md §1 and EXPERIMENTS.md): each bench runs
// the *functional* pipeline on a scaled dataset (10^5-ish points, |C| and
// DPU count scaled by the same factor so clusters-per-DPU matches the paper)
// and then extrapolates the distance-calculation stage linearly to the
// paper's 1B-point / 7-DIMM configuration. LUT construction, top-k merging,
// scheduling and transfers are scale-free (they depend on |Q|, nprobe, m, k)
// and are reported as measured.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "baselines/cpu_cost_model.hpp"
#include "baselines/cpu_ivfpq.hpp"
#include "baselines/gpu_model.hpp"
#include "core/engine.hpp"
#include "data/dataset.hpp"
#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "metrics/report.hpp"

namespace upanns::bench {

inline constexpr std::size_t kPaperN = 1'000'000'000;  ///< 1B points
inline constexpr std::size_t kPaperDpus = 896;         ///< 7 DIMMs
inline constexpr std::size_t kPaperBatch = 1000;

/// A scaled stand-in for one paper configuration.
struct Config {
  data::DatasetFamily family = data::DatasetFamily::kSiftLike;
  std::size_t n = 100'000;         ///< scaled dataset size
  std::size_t paper_ivf = 4096;    ///< |C| as labeled in the paper
  std::size_t scaled_ivf = 512;    ///< |C| actually trained
  std::size_t n_dpus = 128;        ///< DPUs actually simulated
  std::size_t n_queries = 128;     ///< batch actually searched
  std::size_t nprobe = 64;
  std::size_t k = 10;
  std::uint64_t seed = 7;
  /// Override the generator's subvector-pattern probability (drives the CAE
  /// length-reduction rate, Fig 14). Negative = family default.
  double pattern_prob = -1.0;

  /// Per-list work multiplier taking a scaled list to its paper-sized
  /// counterpart: (1B / paper_ivf) / (n / scaled_ivf).
  double data_factor() const {
    return (static_cast<double>(kPaperN) / static_cast<double>(paper_ivf)) /
           (static_cast<double>(n) / static_cast<double>(scaled_ivf));
  }
  /// Distance work per DPU shrinks with more DPUs (Fig 20 linearity).
  double dpu_factor() const {
    return static_cast<double>(n_dpus) / static_cast<double>(kPaperDpus);
  }
  std::string key() const;
};

/// Built artifacts for one (family, n, scaled_ivf) triple; index builds are
/// the expensive part, so benches share them through the cache below.
struct Context {
  data::Dataset base;
  std::unique_ptr<ivf::IvfIndex> index;
  data::QueryWorkload workload;
  data::QueryWorkload history_workload;  ///< drives frequency estimation
  ivf::ClusterStats stats;               ///< for `stats_nprobe`
  std::vector<std::vector<std::uint32_t>> history;
  std::size_t stats_nprobe = 0;
};

/// Build (or fetch from the in-process cache) the context for a config.
Context& context_for(const Config& cfg);

/// CPU / GPU stage times extrapolated to the paper scale.
baselines::QueryWorkProfile paper_profile(const Config& cfg,
                                          const baselines::QueryWorkProfile& measured);
baselines::StageTimes cpu_times_at_scale(const Config& cfg,
                                         const baselines::CpuSearchResult& res);
baselines::StageTimes gpu_times_at_scale(const Config& cfg,
                                         const baselines::CpuSearchResult& res);
baselines::GpuCapacity gpu_capacity_at_scale(const Config& cfg,
                                             const baselines::CpuSearchResult& res);

/// PIM report extrapolated to paper scale (1B points, kPaperDpus DPUs).
core::PimSearchReport pim_at_scale(const Config& cfg,
                                   const core::PimSearchReport& report);

/// QPS helpers (batch = the measured batch size).
double qps_of(const Config& cfg, const baselines::StageTimes& t);

/// Run one system on a config (probes shared so cluster filtering is
/// computed once). Returns at-scale numbers.
struct SystemRun {
  double qps = 0;
  double qps_per_watt = 0;
  baselines::StageTimes times;  ///< at paper scale
  double recall = 0;            ///< only filled when ground truth is passed
  core::PimSearchReport pim;    ///< valid for PIM systems only
  bool oom = false;             ///< GPU capacity check failed
};

SystemRun run_cpu(const Config& cfg);
SystemRun run_gpu(const Config& cfg);
SystemRun run_upanns(const Config& cfg,
                     const core::UpAnnsOptions* override_opts = nullptr);
SystemRun run_pim_naive(const Config& cfg);

/// Default UpANNS options for a config.
core::UpAnnsOptions upanns_options(const Config& cfg);
core::UpAnnsOptions naive_options(const Config& cfg);

/// Clear the context cache (benches with many families call this to bound
/// memory).
void clear_context_cache();

}  // namespace upanns::bench
