// Shared harness for the figure-reproduction benches.
//
// Scaling methodology (see DESIGN.md §1 and EXPERIMENTS.md): each bench runs
// the *functional* pipeline on a scaled dataset (10^5-ish points, |C| and
// DPU count scaled by the same factor so clusters-per-DPU matches the paper)
// and then extrapolates the distance-calculation stage linearly to the
// paper's 1B-point / 7-DIMM configuration. LUT construction, top-k merging,
// scheduling and transfers are scale-free (they depend on |Q|, nprobe, m, k)
// and are reported as measured.
//
// Every system runs through the core::AnnsBackend interface: one
// `make_backend` factory, one `run_system` driver, one `core::SearchReport`
// result shape. The per-figure mains only pick configs and print.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "baselines/cpu_cost_model.hpp"
#include "baselines/cpu_ivfpq.hpp"
#include "baselines/gpu_model.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "data/dataset.hpp"
#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "metrics/report.hpp"

namespace upanns::bench {

inline constexpr std::size_t kPaperN = 1'000'000'000;  ///< 1B points
inline constexpr std::size_t kPaperDpus = 896;         ///< 7 DIMMs
inline constexpr std::size_t kPaperBatch = 1000;

/// A scaled stand-in for one paper configuration.
struct Config {
  data::DatasetFamily family = data::DatasetFamily::kSiftLike;
  std::size_t n = 100'000;         ///< scaled dataset size
  std::size_t paper_ivf = 4096;    ///< |C| as labeled in the paper
  std::size_t scaled_ivf = 512;    ///< |C| actually trained
  std::size_t n_dpus = 128;        ///< DPUs actually simulated
  std::size_t n_queries = 128;     ///< batch actually searched
  std::size_t nprobe = 64;
  std::size_t k = 10;
  std::uint64_t seed = 7;
  /// Override the generator's subvector-pattern probability (drives the CAE
  /// length-reduction rate, Fig 14). Negative = family default.
  double pattern_prob = -1.0;

  /// Per-list work multiplier taking a scaled list to its paper-sized
  /// counterpart: (1B / paper_ivf) / (n / scaled_ivf).
  double data_factor() const {
    return (static_cast<double>(kPaperN) / static_cast<double>(paper_ivf)) /
           (static_cast<double>(n) / static_cast<double>(scaled_ivf));
  }
  /// Distance work per DPU shrinks with more DPUs (Fig 20 linearity).
  double dpu_factor() const {
    return static_cast<double>(n_dpus) / static_cast<double>(kPaperDpus);
  }
  std::string key() const;
};

/// Built artifacts for one (family, n, scaled_ivf) triple; index builds are
/// the expensive part, so benches share them through the cache below.
struct Context {
  data::Dataset base;
  std::unique_ptr<ivf::IvfIndex> index;
  data::QueryWorkload workload;
  data::QueryWorkload history_workload;  ///< drives frequency estimation
  ivf::ClusterStats stats;               ///< for `stats_nprobe`
  std::vector<std::vector<std::uint32_t>> history;
  std::size_t stats_nprobe = 0;
  // Build-phase wall-clock breakdown (filled on first construction; zeros
  // when served from the cache). host_throughput reports these as the
  // `stages.build.substages` block.
  ivf::BuildStats build_stats;
  double data_gen_seconds = 0;   ///< synthetic base-set generation
  double workload_seconds = 0;   ///< query + history workload generation
  double stats_seconds = 0;      ///< history filter + frequency stats
};

/// Build (or fetch from the in-process cache) the context for a config.
Context& context_for(const Config& cfg);

/// Work profile rescaled to the paper's 1B-point configuration.
baselines::QueryWorkProfile paper_profile(const Config& cfg,
                                          const baselines::QueryWorkProfile& measured);

/// QPS helpers (batch = the measured batch size).
double qps_of(const Config& cfg, const baselines::StageTimes& t);

/// Default UpANNS options for a config (shared sizing knobs; `make_backend`
/// derives the PIM-naive variant from the same options).
core::UpAnnsOptions upanns_options(const Config& cfg);

/// Construct a backend for this config on the cached context.
std::unique_ptr<core::AnnsBackend> make_backend(
    core::BackendKind kind, const Config& cfg,
    const core::UpAnnsOptions* override_opts = nullptr);

/// Extrapolate a measured report to the paper scale (1B points, kPaperDpus
/// DPUs for PIM; the analytical cost models re-run on the rescaled profile
/// for CPU/GPU). QPS, QPS/W and stage times are rewritten in place.
core::SearchReport at_paper_scale(const Config& cfg,
                                  const core::SearchReport& measured);

/// Run one system end to end on a config and return at-scale numbers.
core::SearchReport run_system(core::BackendKind kind, const Config& cfg,
                              const core::UpAnnsOptions* override_opts = nullptr);

core::SearchReport run_cpu(const Config& cfg);
core::SearchReport run_gpu(const Config& cfg);
core::SearchReport run_upanns(const Config& cfg,
                              const core::UpAnnsOptions* override_opts = nullptr);
core::SearchReport run_pim_naive(const Config& cfg);

/// Clear the context cache (benches with many families call this to bound
/// memory).
void clear_context_cache();

}  // namespace upanns::bench
