// Figure 10: QPS of Faiss-CPU, PIM-naive and UpANNS across three datasets,
// IVF in {4096, 8192, 16384} and nprobe in {64, 128, 256}, normalized to
// Faiss-CPU at (IVF=4096, nprobe=256) per dataset — exactly the paper's
// normalization.
//
// Expected shape (paper): UpANNS 1.6x-4.3x over Faiss-CPU, speedup growing
// with IVF count; PIM-naive above CPU but up to ~3.1x below UpANNS.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 10",
                  "QPS normalized to Faiss-CPU @ (IVF=4096, nprobe=256)");

  const data::DatasetFamily families[] = {data::DatasetFamily::kDeepLike,
                                          data::DatasetFamily::kSiftLike,
                                          data::DatasetFamily::kSpacevLike};
  const std::size_t ivfs[] = {4096, 8192, 16384};
  const std::size_t nprobes[] = {64, 128, 256};

  for (const auto family : families) {
    metrics::Table table({"dataset", "IVF", "nprobe", "CPU", "PIM-naive",
                          "UpANNS", "UpANNS/CPU", "UpANNS/naive"});
    double cpu_base = 0;  // CPU @ IVF4096, nprobe 256

    struct Cell {
      std::size_t ivf, nprobe;
      double cpu, naive, up;
    };
    std::vector<Cell> cells;
    for (const std::size_t ivf : ivfs) {
      Config cfg;
      cfg.family = family;
      cfg.paper_ivf = ivf;
      // One scaled index per family: the paper IVF count enters through the
      // per-list extrapolation factor (see bench_common.hpp). The scaled
      // clusters-per-DPU ratio (4) approximates the paper's 4096/896.
      cfg.scaled_ivf = 256;
      cfg.n = 200'000;
      cfg.n_dpus = 64;
      cfg.n_queries = 256;
      for (const std::size_t nprobe : nprobes) {
        cfg.nprobe = nprobe;
        const core::SearchReport cpu = run_cpu(cfg);
        const core::SearchReport naive = run_pim_naive(cfg);
        const core::SearchReport up = run_upanns(cfg);
        cells.push_back({ivf, nprobe, cpu.qps, naive.qps, up.qps});
        if (ivf == 4096 && nprobe == 256) cpu_base = cpu.qps;
      }
    }
    for (const Cell& c : cells) {
      table.add_row({data::family_name(family), std::to_string(c.ivf),
                     std::to_string(c.nprobe),
                     metrics::Table::fmt(c.cpu / cpu_base, 2),
                     metrics::Table::fmt(c.naive / cpu_base, 2),
                     metrics::Table::fmt(c.up / cpu_base, 2),
                     metrics::Table::fmt(c.up / c.cpu, 2),
                     metrics::Table::fmt(c.up / c.naive, 2)});
    }
    table.print();
    clear_context_cache();  // bound memory across families
  }
  return 0;
}
