// Figure 19: query processing time breakdown per stage for Faiss-CPU,
// Faiss-GPU and UpANNS, per dataset, at k = 10 and k = 100. Expected shape:
// CPU ~99.5% distance calculation; GPU dominated by top-k (>76%, growing
// with k); UpANNS distance share 75-80% with top-k growing from ~9% to ~17%
// as k rises.
//
// Besides the stdout table, the same rows are written as JSON (default
// fig19_stage_breakdown.json, override with argv[1]; "-" disables). Each
// row's `detail` carries the absolute stage seconds and — for UpANNS — the
// full PimExtras (per-DPU stage seconds, balance ratios) at full precision.
#include "bench_common.hpp"
#include "obs/report_json.hpp"

using namespace upanns;
using namespace upanns::bench;

namespace {

void add_row(metrics::FigureSink& sink, const char* dataset,
             const char* system, std::size_t k,
             const core::SearchReport& report) {
  const auto s = metrics::shares(report.times);
  obs::JsonWriter detail;
  detail.begin_object();
  detail.key("times").raw(obs::stage_times_json(report.times));
  if (report.pim) {
    detail.key("pim").raw(obs::pim_extras_json(*report.pim));
  }
  detail.end_object();
  sink.add_row({dataset, system, std::to_string(k),
                metrics::Table::fmt(s.cluster_filter, 1),
                metrics::Table::fmt(s.lut_build, 1),
                metrics::Table::fmt(s.distance_calc, 1),
                metrics::Table::fmt(s.topk, 1),
                metrics::Table::fmt(s.transfer, 1)},
               detail.take());
}

}  // namespace

int main(int argc, char** argv) {
  metrics::banner("Figure 19", "Stage breakdown (% of query time)");
  metrics::FigureSink sink("fig19_stage_breakdown",
                           {"dataset", "system", "k", "filter%", "LUT%",
                            "distance%", "topk%", "transfer%"});
  for (const auto family : {data::DatasetFamily::kDeepLike,
                            data::DatasetFamily::kSiftLike,
                            data::DatasetFamily::kSpacevLike}) {
    Config cfg;
    cfg.family = family;
    cfg.n = 150'000;
    cfg.scaled_ivf = 256;
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 64;
    cfg.n_queries = 128;
    cfg.nprobe = 64;
    for (const std::size_t k : {std::size_t{10}, std::size_t{100}}) {
      cfg.k = k;
      add_row(sink, data::family_name(family), "Faiss-CPU", k, run_cpu(cfg));
      add_row(sink, data::family_name(family), "Faiss-GPU", k, run_gpu(cfg));
      add_row(sink, data::family_name(family), "UpANNS", k, run_upanns(cfg));
    }
    clear_context_cache();
  }
  const std::string json_path =
      argc > 1 ? argv[1] : "fig19_stage_breakdown.json";
  sink.finish(json_path == "-" ? "" : json_path);
  std::printf("\nPaper shape: CPU ~99.5%% distance; GPU topk 76-89%%; UpANNS "
              "distance 75-80%%, topk 9-17%% as k grows.\n");
  return 0;
}
