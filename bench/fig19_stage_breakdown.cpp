// Figure 19: query processing time breakdown per stage for Faiss-CPU,
// Faiss-GPU and UpANNS, per dataset, at k = 10 and k = 100. Expected shape:
// CPU ~99.5% distance calculation; GPU dominated by top-k (>76%, growing
// with k); UpANNS distance share 75-80% with top-k growing from ~9% to ~17%
// as k rises.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

namespace {

void add_row(metrics::Table& t, const char* dataset, const char* system,
             std::size_t k, const baselines::StageTimes& times) {
  const auto s = metrics::shares(times);
  t.add_row({dataset, system, std::to_string(k),
             metrics::Table::fmt(s.cluster_filter, 1),
             metrics::Table::fmt(s.lut_build, 1),
             metrics::Table::fmt(s.distance_calc, 1),
             metrics::Table::fmt(s.topk, 1),
             metrics::Table::fmt(s.transfer, 1)});
}

}  // namespace

int main() {
  metrics::banner("Figure 19", "Stage breakdown (% of query time)");
  metrics::Table table({"dataset", "system", "k", "filter%", "LUT%",
                        "distance%", "topk%", "transfer%"});
  for (const auto family : {data::DatasetFamily::kDeepLike,
                            data::DatasetFamily::kSiftLike,
                            data::DatasetFamily::kSpacevLike}) {
    Config cfg;
    cfg.family = family;
    cfg.n = 150'000;
    cfg.scaled_ivf = 256;
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 64;
    cfg.n_queries = 128;
    cfg.nprobe = 64;
    for (const std::size_t k : {std::size_t{10}, std::size_t{100}}) {
      cfg.k = k;
      add_row(table, data::family_name(family), "Faiss-CPU", k,
              run_cpu(cfg).times);
      add_row(table, data::family_name(family), "Faiss-GPU", k,
              run_gpu(cfg).times);
      add_row(table, data::family_name(family), "UpANNS", k,
              run_upanns(cfg).times);
    }
    clear_context_cache();
  }
  table.print();
  std::printf("\nPaper shape: CPU ~99.5%% distance; GPU topk 76-89%%; UpANNS "
              "distance 75-80%%, topk 9-17%% as k grows.\n");
  return 0;
}
