// Table 1: specifications of the evaluated hardware platforms.
#include "bench_common.hpp"
#include "pim/energy.hpp"

using namespace upanns;

int main() {
  metrics::banner("Table 1", "Evaluated hardware architectures");
  metrics::Table table({"hardware", "configuration", "price_USD",
                        "memory_GB", "peak_power_W", "bandwidth_GBps"});
  table.add_row({"CPU", "2x Xeon Silver 4110 + 4x DDR4",
                 metrics::Table::fmt(hw::kCpuPriceUsd, 0),
                 metrics::Table::fmt(hw::kCpuMemCapacity / 1e9, 0),
                 metrics::Table::fmt(hw::kCpuPeakPowerW, 0),
                 metrics::Table::fmt(hw::kCpuMemBandwidth / 1e9, 1)});
  table.add_row({"GPU", "NVIDIA A100 PCIe 80GB",
                 metrics::Table::fmt(hw::kGpuPriceUsd, 0),
                 metrics::Table::fmt(hw::kGpuMemCapacity / 1e9, 0),
                 metrics::Table::fmt(hw::kGpuPeakPowerW, 0),
                 metrics::Table::fmt(hw::kGpuMemBandwidth / 1e9, 0)});
  const std::size_t dpus = hw::kDefaultDpus;
  table.add_row({"PIM", "7x UPMEM DIMM (896 DPUs)",
                 metrics::Table::fmt(
                     pim::platform_price_usd(pim::Platform::kPim, dpus), 0),
                 metrics::Table::fmt(
                     static_cast<double>(dpus) * hw::kMramBytes / 1e9, 0),
                 metrics::Table::fmt(
                     pim::platform_power_w(pim::Platform::kPim, dpus), 1),
                 // Aggregated MRAM bandwidth: ~0.68 GB/s effective streaming
                 // per DPU (1 byte per 1.46 cycles incl. setup) x 896.
                 metrics::Table::fmt(
                     static_cast<double>(dpus) * hw::kDpuFreqHz /
                         (hw::kMramCyclesPerByte +
                          hw::kMramSetupCycles / 2048.0) / 1e9, 1)});
  table.print();
  std::printf("\nPer-DPU: %.0f MHz, %zu tasklets, %zu MB MRAM, %zu KB WRAM, "
              "%u-stage pipeline\n",
              hw::kDpuFreqHz / 1e6, static_cast<std::size_t>(hw::kMaxTasklets),
              hw::kMramBytes >> 20, hw::kWramBytes >> 10, hw::kPipelineStages);
  return 0;
}
