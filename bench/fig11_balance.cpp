// Figure 11: ratio of maximum to average per-DPU workload, PIM-naive vs
// UpANNS, across nprobe and IVF settings. Expected shape: PIM-naive ratio
// well above 1 (worst at small nprobe/IVF); UpANNS close to 1 everywhere.
//
// Besides the stdout table, the same rows are written as JSON (default
// fig11_balance.json, override with argv[1]; "-" disables). Each row's
// `detail` carries the full PimExtras of both systems — balance_ratio,
// schedule_balance, per-DPU busy and stage seconds — at full precision.
#include "bench_common.hpp"
#include "obs/report_json.hpp"

using namespace upanns;
using namespace upanns::bench;

int main(int argc, char** argv) {
  metrics::banner("Figure 11",
                  "max/avg DPU workload: PIM-naive vs UpANNS placement");
  metrics::FigureSink sink(
      "fig11_balance",
      {"dataset", "IVF", "nprobe", "naive_ratio", "upanns_ratio"});
  for (const auto family : {data::DatasetFamily::kSiftLike,
                            data::DatasetFamily::kSpacevLike}) {
    for (const std::size_t ivf : {std::size_t{4096}, std::size_t{16384}}) {
      Config cfg;
      cfg.family = family;
      cfg.paper_ivf = ivf;
      // More clusters per DPU at higher IVF => finer placement granularity,
      // the mechanism behind the paper's improving naive ratio with IVF.
      cfg.scaled_ivf = ivf == 4096 ? 256 : 512;
      cfg.n = 150'000;
      cfg.n_dpus = 64;
      cfg.n_queries = 384;
      for (const std::size_t nprobe : {std::size_t{64}, std::size_t{256}}) {
        // Balance is a probe-*fraction* phenomenon: keep the fraction of
        // clusters visited per query equal to the paper's nprobe / |C|.
        cfg.nprobe = std::max<std::size_t>(
            2, nprobe * cfg.scaled_ivf / ivf);
        const core::SearchReport up = run_upanns(cfg);
        const core::SearchReport naive = run_pim_naive(cfg);
        obs::JsonWriter detail;
        detail.begin_object();
        detail.key("naive").raw(obs::pim_extras_json(*naive.pim));
        detail.key("upanns").raw(obs::pim_extras_json(*up.pim));
        detail.end_object();
        sink.add_row({data::family_name(family), std::to_string(ivf),
                      std::to_string(nprobe),
                      metrics::Table::fmt(naive.pim->schedule_balance, 2),
                      metrics::Table::fmt(up.pim->schedule_balance, 2)},
                     detail.take());
      }
    }
    clear_context_cache();
  }
  const std::string json_path = argc > 1 ? argv[1] : "fig11_balance.json";
  sink.finish(json_path == "-" ? "" : json_path);
  std::printf("\nPaper shape: naive >> 1 (worst at small nprobe); UpANNS ~1 "
              "in all settings.\n");
  return 0;
}
