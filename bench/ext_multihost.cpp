// Extension bench (paper Sec 5.5's closing claim): multi-host UpANNS.
// "Only query distribution and result aggregation require cross-host
// communication. The core memory-intensive search operations remain local to
// each host, ensuring efficient scalability."
// Expected shape: near-linear QPS scaling with host count; the network share
// stays negligible. The second table streams the workload in batches through
// MultiHostBatchPipeline and compares synchronous serving against the
// overlapped schedule (coordinator pre/post of batch i hides under the device
// phase of its neighbours).
#include "bench_common.hpp"
#include "core/multihost.hpp"
#include "core/pipeline.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Extension (Sec 5.5)", "Multi-host scaling");
  Config cfg;
  cfg.family = data::DatasetFamily::kSiftLike;
  cfg.n = 150'000;
  cfg.scaled_ivf = 256;
  cfg.paper_ivf = 4096;
  cfg.n_queries = 128;
  cfg.nprobe = 64;
  Context& ctx = context_for(cfg);

  metrics::Table table({"hosts", "QPS@1B", "speedup", "network_share%"});
  double base = 0;
  for (const std::size_t hosts : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
    core::MultiHostOptions opts;
    opts.n_hosts = hosts;
    opts.per_host = upanns_options(cfg);
    opts.per_host.n_dpus = 64;  // each host owns its own 64 simulated DPUs
    core::MultiHostUpAnns mh(*ctx.index, ctx.stats, opts);
    auto r = mh.search(ctx.workload.queries);

    // At-scale extrapolation of the slowest host (distance-stage linear rule,
    // consistent with the rest of the harness); network costs as measured.
    double slowest = 0;
    for (auto t : r.host_times) {
      baselines::StageTimes s = t;
      s.distance_calc *= cfg.data_factor() * cfg.dpu_factor();
      s.lut_build *= cfg.dpu_factor();
      s.topk *= cfg.dpu_factor();
      slowest = std::max(slowest, s.total());
    }
    const double total = slowest + r.network_seconds;
    const double qps = static_cast<double>(cfg.n_queries) / total;
    if (hosts == 1) base = qps;
    table.add_row({std::to_string(hosts), metrics::Table::fmt(qps, 1),
                   metrics::Table::fmt(qps / base, 2),
                   metrics::Table::fmt(r.network_seconds / total * 100.0, 2)});
  }
  table.print();
  std::printf("\nPaper claim: near-linear host scaling; only query broadcast "
              "and result aggregation cross the network.\n");

  // Streaming the same workload in batches: synchronous vs overlapped
  // coordinator schedule. Overlap hides the broadcast + inter-host merge of
  // one batch under the slowest host's device phase of the next.
  metrics::Table pipe({"hosts", "sync_ms", "overlap_ms", "hidden%"});
  const auto batches = core::split_batches(ctx.workload.queries, 16);
  for (const std::size_t hosts :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::MultiHostOptions opts;
    opts.n_hosts = hosts;
    opts.per_host = upanns_options(cfg);
    opts.per_host.n_dpus = 64;
    core::MultiHostUpAnns mh(*ctx.index, ctx.stats, opts);

    core::MultiHostBatchPipeline sync(mh, {.overlap = false});
    const auto off = sync.run(batches);
    core::MultiHostBatchPipeline overlapped(mh, {.overlap = true});
    const auto on = overlapped.run(batches);

    pipe.add_row({std::to_string(hosts),
                  metrics::Table::fmt(off.elapsed_seconds * 1e3, 3),
                  metrics::Table::fmt(on.elapsed_seconds * 1e3, 3),
                  metrics::Table::fmt(
                      (1.0 - on.elapsed_seconds / off.elapsed_seconds) * 100.0,
                      2)});
  }
  pipe.print();
  std::printf("\nOverlapped serving never exceeds the synchronous schedule; "
              "results are bit-identical in both modes.\n");
  return 0;
}
