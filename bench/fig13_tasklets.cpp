// Figure 13: UpANNS QPS as the number of tasklets per DPU grows from 1 to
// 24, normalized to 1 tasklet. Expected shape: near-linear scaling up to 11
// tasklets (the 14-stage pipeline's saturation point), flat beyond.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 13", "QPS vs #tasklets (normalized to 1 tasklet)");
  metrics::Table table({"dataset", "tasklets", "norm_QPS"});
  for (const auto family : {data::DatasetFamily::kDeepLike,
                            data::DatasetFamily::kSiftLike,
                            data::DatasetFamily::kSpacevLike}) {
    Config cfg;
    cfg.family = family;
    cfg.n = 200'000;
    cfg.scaled_ivf = 64;  // ~3k-point lists: chunk granularity negligible
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 16;
    cfg.n_queries = 64;
    cfg.nprobe = 16;

    double base = 0;
    for (const unsigned t : {1u, 2u, 4u, 8u, 11u, 16u, 20u, 24u}) {
      core::UpAnnsOptions opts = upanns_options(cfg);
      opts.n_tasklets = t;
      const core::SearchReport run = run_upanns(cfg, &opts);
      if (t == 1) base = run.qps;
      table.add_row({data::family_name(family), std::to_string(t),
                     metrics::Table::fmt(run.qps / base, 2)});
    }
    clear_context_cache();
  }
  table.print();
  std::printf("\nPaper shape: ~11x at 11 tasklets, saturated beyond "
              "(pipeline full).\n");
  return 0;
}
