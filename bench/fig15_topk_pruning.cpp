// Figure 15: time of the top-k selection stage with and without the pruned
// merge (Opt4), as k grows from 10 to 100. Normalized to the pruned top-10
// time. Expected shape: unpruned time grows ~linearly with k; pruning cuts
// it substantially, more so at large k.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 15",
                  "Top-k selection time with/without pruning (normalized)");
  metrics::Table table({"k", "no_pruning", "with_pruning", "reduction%",
                        "comparisons_pruned%"});
  Config cfg;
  cfg.family = data::DatasetFamily::kSiftLike;
  cfg.n = 150'000;
  cfg.scaled_ivf = 256;
  cfg.paper_ivf = 4096;
  cfg.n_dpus = 64;
  cfg.n_queries = 128;
  cfg.nprobe = 64;

  double base = 0;
  for (const std::size_t k : {std::size_t{10}, std::size_t{20},
                              std::size_t{50}, std::size_t{100}}) {
    cfg.k = k;
    core::UpAnnsOptions pruned = upanns_options(cfg);
    core::UpAnnsOptions unpruned = upanns_options(cfg);
    unpruned.opt_prune_topk = false;
    const core::SearchReport with = run_upanns(cfg, &pruned);
    const core::SearchReport without = run_upanns(cfg, &unpruned);
    if (base == 0) base = with.times.topk;
    const double total_candidates = static_cast<double>(
        with.pim->merge_insertions + with.pim->merge_pruned);
    table.add_row(
        {std::to_string(k), metrics::Table::fmt(without.times.topk / base, 2),
         metrics::Table::fmt(with.times.topk / base, 2),
         metrics::Table::fmt(
             (1.0 - with.times.topk / without.times.topk) * 100.0, 1),
         metrics::Table::fmt(
             total_candidates > 0
                 ? static_cast<double>(with.pim->merge_pruned) /
                       total_candidates * 100.0
                 : 0.0,
             1)});
  }
  table.print();
  std::printf("\nPaper shape: selection time ~linear in k; pruning skips "
              "~68%% of comparisons and cuts the stage up to 3.1x.\n");
  return 0;
}
