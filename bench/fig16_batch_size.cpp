// Figure 16: per-query latency vs batch size (10 / 100 / 1000) for
// Faiss-CPU, PIM-naive and UpANNS. Expected shape: UpANNS lowest latency at
// every batch size, with its advantage growing as pre/post-processing
// overheads amortize over larger batches.
#include "bench_common.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 16", "Query latency vs batch size (SIFT1B-like)");
  metrics::Table table({"batch", "CPU_ms_per_q", "naive_ms_per_q",
                        "UpANNS_ms_per_q", "UpANNS_speedup_vs_CPU"});
  for (const std::size_t batch : {std::size_t{10}, std::size_t{100},
                                  std::size_t{1000}}) {
    Config cfg;
    cfg.family = data::DatasetFamily::kSiftLike;
    cfg.n = 150'000;
    cfg.scaled_ivf = 256;
    cfg.paper_ivf = 4096;
    cfg.n_dpus = 64;
    cfg.n_queries = batch;
    cfg.nprobe = 64;
    const core::SearchReport cpu = run_cpu(cfg);
    const core::SearchReport naive = run_pim_naive(cfg);
    const core::SearchReport up = run_upanns(cfg);
    const double nq = static_cast<double>(batch);
    table.add_row({std::to_string(batch),
                   metrics::Table::fmt(cpu.times.total() / nq * 1e3, 3),
                   metrics::Table::fmt(naive.times.total() / nq * 1e3, 3),
                   metrics::Table::fmt(up.times.total() / nq * 1e3, 3),
                   metrics::Table::fmt(cpu.times.total() / up.times.total(), 2)});
    clear_context_cache();
  }
  table.print();
  std::printf("\nPaper shape: UpANNS lowest latency; speedup grows with "
              "batch size as overheads amortize.\n");
  return 0;
}
