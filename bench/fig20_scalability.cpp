// Figure 20: UpANNS scalability with the number of DPUs. Following the
// paper, QPS is measured at 500-900 DPUs on a 500M-point configuration, a
// linear regression is fitted, and QPS is predicted out to 2560 DPUs
// (20 DIMMs). The Faiss-GPU QPS line and the 1654-DPU point where PIM's
// DIMM power equals the A100's 300 W budget are marked. Expected shape:
// near-linear scaling; prediction at 2560 DPUs ~2.6x the GPU.
#include "bench_common.hpp"
#include "metrics/regression.hpp"
#include "pim/energy.hpp"

using namespace upanns;
using namespace upanns::bench;

int main() {
  metrics::banner("Figure 20", "Scalability with #DPUs (500M-point scale)");

  const std::size_t paper_dpus[] = {500, 600, 700, 800, 900};
  std::vector<std::size_t> xs;
  std::vector<double> measured;

  Config cfg;
  cfg.family = data::DatasetFamily::kSiftLike;
  cfg.n = 200'000;
  cfg.scaled_ivf = 256;
  cfg.paper_ivf = 4096;
  cfg.n_queries = 192;
  cfg.nprobe = 64;

  metrics::Table table({"DPUs", "QPS", "kind"});
  for (const std::size_t target : paper_dpus) {
    // Simulate a proportionally scaled system (1/8 the DPUs) and extrapolate
    // per-DPU work to the target count, as everywhere else in the harness.
    cfg.n_dpus = target / 8;
    Context& ctx = context_for(cfg);
    auto backend = make_backend(core::BackendKind::kUpAnns, cfg);
    const auto report = backend->search(ctx.workload.queries);
    // 500M-point scale: per-list factor relative to the scaled run.
    const double data_factor =
        (5e8 / static_cast<double>(cfg.paper_ivf)) /
        (static_cast<double>(cfg.n) / static_cast<double>(cfg.scaled_ivf));
    const double dpu_factor = static_cast<double>(cfg.n_dpus) /
                              static_cast<double>(target);
    const auto at_scale = report.at_scale(data_factor, dpu_factor);
    xs.push_back(target);
    measured.push_back(at_scale.qps);
    table.add_row({std::to_string(target),
                   metrics::Table::fmt(at_scale.qps, 1), "measured"});
  }

  const metrics::ScalingModel model = metrics::fit_scaling(xs, measured);
  for (const std::size_t d : {1024u, 1280u, 1536u, 1654u, 2048u, 2560u}) {
    table.add_row({std::to_string(d),
                   metrics::Table::fmt(model.predict_qps(d), 1),
                   d == 1654 ? "predicted (GPU power parity)" : "predicted"});
  }
  table.print();

  // GPU reference at the same 500M scale.
  cfg.n_dpus = 64;
  Context& ctx = context_for(cfg);
  auto gpu_backend = make_backend(core::BackendKind::kGpuIvfpq, cfg);
  const auto gpu_report = gpu_backend->search(ctx.workload.queries);
  auto profile = gpu_report.gpu->profile;
  {
    const double f = (5e8 / static_cast<double>(cfg.paper_ivf)) /
                     (static_cast<double>(cfg.n) /
                      static_cast<double>(cfg.scaled_ivf));
    profile.total_candidates = static_cast<std::size_t>(
        static_cast<double>(profile.total_candidates) * f);
    profile.dataset_n = 500'000'000;
    profile.n_clusters = cfg.paper_ivf;
  }
  const double gpu_qps =
      static_cast<double>(cfg.n_queries) /
      baselines::GpuModel::stage_times(profile).total();

  std::printf("\nregression fit R^2 = %.4f (paper: near-perfect linear fit)\n",
              model.r2());
  std::printf("Faiss-GPU QPS at this scale: %.1f\n", gpu_qps);
  std::printf("UpANNS @ 1654 DPUs (GPU power parity, 300W): %.1f QPS "
              "(%.2fx GPU)\n",
              model.predict_qps(1654), model.predict_qps(1654) / gpu_qps);
  std::printf("UpANNS @ 2560 DPUs (20 DIMMs, $8000): %.1f QPS (%.2fx GPU)\n",
              model.predict_qps(2560), model.predict_qps(2560) / gpu_qps);
  return 0;
}
