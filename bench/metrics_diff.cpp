// metrics_diff — the telemetry regression gate. Compares a freshly produced
// metrics snapshot (upanns_cli serve --metrics-out) against a committed
// baseline and fails when a pipeline stage's share of the simulated batch
// time regressed beyond tolerance.
//
//   metrics_diff --baseline BENCH_metrics.json --current metrics.json
//                [--tolerance 0.10] [--min-share 0.02] [--out report.json]
//
// Comparisons are ratio-normalized like the host-throughput gate: each
// stage's mean simulated seconds is divided by the sum of all stage means,
// so the gate tracks *shape* regressions (one stage growing at the others'
// expense) independent of workload size, and additionally checks the
// absolute mean of the end-to-end batch histograms (pipeline.batch.seconds /
// multihost.batch.seconds) and of query.latency_seconds, which are
// deterministic simulated quantities.
//
// Exit codes: 0 = pass, 1 = regression, 2 = artifacts not comparable
// (missing/mismatched provenance schema, or different workload shape).
// The git sha is deliberately NOT compared — the whole point is comparing
// across commits; only the schema version gates comparability.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/report_json.hpp"
#include "obs/trace.hpp"

using namespace upanns;

namespace {

struct Artifact {
  std::string path;
  std::string schema_version;
  std::string git_sha;
  obs::MetricsSnapshot snapshot;
  std::uint64_t n_queries = 0;  ///< pipeline.queries / multihost share
};

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Artifact load_artifact(const std::string& path) {
  Artifact a;
  a.path = path;
  const obs::JsonValue doc = obs::json_parse(read_text_file(path));
  if (!doc.has("provenance")) {
    throw std::runtime_error(path + ": no provenance header (not a telemetry "
                                    "artifact, or written by a pre-telemetry "
                                    "build)");
  }
  a.schema_version = doc.at("provenance").at("schema_version").string;
  a.git_sha = doc.at("provenance").at("git_sha").string;
  if (!doc.has("metrics")) {
    throw std::runtime_error(path + ": no metrics snapshot");
  }
  a.snapshot = obs::snapshot_from_json(doc.at("metrics"));
  for (const auto& c : a.snapshot.counters) {
    if (c.name == "pipeline.queries" || c.name == "multihost.queries") {
      a.n_queries += c.value;
    }
  }
  return a;
}

const obs::MetricsSnapshot::HistogramValue* find_histogram(
    const obs::MetricsSnapshot& s, const std::string& name) {
  for (const auto& h : s.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double mean_of(const obs::MetricsSnapshot::HistogramValue& h) {
  return h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
}

/// `pipeline.stage.<name>.seconds` -> `<name>`, or "" for other series.
std::string stage_of(const std::string& name) {
  constexpr const char* kPrefix = "pipeline.stage.";
  constexpr const char* kSuffix = ".seconds";
  if (name.rfind(kPrefix, 0) != 0) return "";
  if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) return "";
  if (name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                   kSuffix) != 0) {
    return "";
  }
  return name.substr(std::strlen(kPrefix),
                     name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
}

struct Row {
  std::string name;       ///< stage or histogram being compared
  std::string kind;       ///< "stage-share" or "mean-seconds"
  double base = 0, cur = 0;
  double ratio = 1;       ///< cur / base (1 when base == 0)
  bool regressed = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, out_path;
  double tolerance = 0.10;
  double min_share = 0.02;
  for (int i = 1; i < argc; ++i) {
    auto val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = val("--baseline");
    } else if (std::strcmp(argv[i], "--current") == 0) {
      current_path = val("--current");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = val("--out");
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      tolerance = std::strtod(val("--tolerance"), nullptr);
    } else if (std::strcmp(argv[i], "--min-share") == 0) {
      min_share = std::strtod(val("--min-share"), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: metrics_diff --baseline B.json --current C.json\n"
                   "                    [--tolerance %.2f] [--min-share %.2f]\n"
                   "                    [--out report.json]\n",
                   tolerance, min_share);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "metrics_diff: --baseline and --current are required\n");
    return 2;
  }

  Artifact base, cur;
  try {
    base = load_artifact(baseline_path);
    cur = load_artifact(current_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics_diff: %s\n", e.what());
    return 2;
  }
  if (base.schema_version != cur.schema_version) {
    std::fprintf(stderr,
                 "metrics_diff: schema mismatch: baseline %s (%s) vs current "
                 "%s (%s) — regenerate the baseline with this build\n",
                 base.schema_version.c_str(), base.git_sha.c_str(),
                 cur.schema_version.c_str(), cur.git_sha.c_str());
    return 2;
  }
  if (base.n_queries != cur.n_queries) {
    std::fprintf(stderr,
                 "metrics_diff: workload mismatch: baseline served %llu "
                 "queries, current %llu — not comparable\n",
                 static_cast<unsigned long long>(base.n_queries),
                 static_cast<unsigned long long>(cur.n_queries));
    return 2;
  }

  std::vector<Row> rows;

  // Stage shares: each stage's mean seconds normalized by the sum of stage
  // means, compared base vs current. Only stages carrying at least
  // --min-share of the baseline total can fail the gate (tiny stages have
  // noisy shares and regress in absolute terms via the batch mean below).
  std::map<std::string, double> base_means, cur_means;
  double base_total = 0, cur_total = 0;
  for (const auto& h : base.snapshot.histograms) {
    if (const std::string s = stage_of(h.name); !s.empty()) {
      base_means[s] = mean_of(h);
      base_total += base_means[s];
    }
  }
  for (const auto& h : cur.snapshot.histograms) {
    if (const std::string s = stage_of(h.name); !s.empty()) {
      cur_means[s] = mean_of(h);
      cur_total += cur_means[s];
    }
  }
  for (const auto& [stage, bm] : base_means) {
    const auto it = cur_means.find(stage);
    if (it == cur_means.end()) continue;
    const double bs = base_total > 0 ? bm / base_total : 0;
    const double cs = cur_total > 0 ? it->second / cur_total : 0;
    Row r;
    r.name = stage;
    r.kind = "stage-share";
    r.base = bs;
    r.cur = cs;
    r.ratio = bs > 0 ? cs / bs : 1.0;
    r.regressed = bs >= min_share && cs > bs * (1.0 + tolerance);
    rows.push_back(std::move(r));
    // Shares are bounded by 1, so a regression in the *dominant* stage
    // barely moves its own share. Simulated stage seconds are deterministic
    // for an identical workload, so the absolute per-stage mean is also
    // gated for stages that carry weight.
    Row m;
    m.name = stage;
    m.kind = "stage-mean";
    m.base = bm;
    m.cur = it->second;
    m.ratio = bm > 0 ? it->second / bm : 1.0;
    m.regressed = bs >= min_share && it->second > bm * (1.0 + tolerance);
    rows.push_back(std::move(m));
  }

  // End-to-end means: deterministic simulated quantities, compared directly.
  for (const char* name : {"pipeline.batch.seconds", "multihost.batch.seconds",
                           "query.latency_seconds",
                           "mutate.patch.seconds"}) {
    const auto* bh = find_histogram(base.snapshot, name);
    const auto* ch = find_histogram(cur.snapshot, name);
    if (bh == nullptr || ch == nullptr) continue;
    Row r;
    r.name = name;
    r.kind = "mean-seconds";
    r.base = mean_of(*bh);
    r.cur = mean_of(*ch);
    r.ratio = r.base > 0 ? r.cur / r.base : 1.0;
    r.regressed = r.base > 0 && r.cur > r.base * (1.0 + tolerance);
    rows.push_back(std::move(r));
  }

  bool failed = false;
  std::printf("metrics_diff: %s vs %s (schema %s, tolerance %.0f%%)\n",
              baseline_path.c_str(), current_path.c_str(),
              base.schema_version.c_str(), tolerance * 100.0);
  for (const auto& r : rows) {
    std::printf("  %-12s %-24s base %.6g  cur %.6g  ratio %.3f  %s\n",
                r.kind.c_str(), r.name.c_str(), r.base, r.cur, r.ratio,
                r.regressed ? "REGRESSED" : "ok");
    failed = failed || r.regressed;
  }
  if (rows.empty()) {
    std::fprintf(stderr, "metrics_diff: no comparable series found\n");
    return 2;
  }

  if (!out_path.empty()) {
    obs::JsonWriter w;
    w.begin_object();
    obs::append_provenance(w);
    w.kv("baseline", baseline_path);
    w.kv("baseline_git_sha", base.git_sha);
    w.kv("current", current_path);
    w.kv("current_git_sha", cur.git_sha);
    w.kv("tolerance", tolerance);
    w.kv("min_share", min_share);
    w.kv("verdict", failed ? "fail" : "pass");
    w.key("rows").begin_array();
    for (const auto& r : rows) {
      w.begin_object();
      w.kv("name", r.name);
      w.kv("kind", r.kind);
      w.kv("base", r.base);
      w.kv("current", r.cur);
      w.kv("ratio", r.ratio);
      w.kv("regressed", r.regressed);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    obs::write_text_file(out_path, w.take());
    std::printf("wrote diff report to %s\n", out_path.c_str());
  }

  std::printf("metrics_diff: %s\n", failed ? "FAIL" : "PASS");
  return failed ? 1 : 0;
}
