// RAG-LLM retrieval scenario (paper Sec 1: retrieval-augmented language
// models are a primary UpANNS workload).
//
// A SPACEV-like text-embedding corpus serves streaming query batches whose
// topic popularity drifts over time. The example demonstrates the adaptive
// strategy of Sec 4.1.2: when the query pattern shifts, per-DPU balance
// degrades; a relocation pass (re-running Algorithm 1 against the new
// frequency profile) restores it.
//
//   ./examples/rag_retrieval [n_points]
#include <cstdio>
#include <cstdlib>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"

using namespace upanns;

namespace {

ivf::ClusterStats stats_from(const ivf::IvfIndex& index,
                             const data::Dataset& base, std::size_t shift,
                             std::size_t nprobe) {
  data::WorkloadSpec spec;
  spec.n_queries = 512;
  spec.seed = 100;
  spec.popularity_shift = shift;
  const auto wl = data::generate_workload(base, spec);
  return ivf::collect_stats(index, ivf::filter_batch(index, wl.queries, nprobe));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80000;
  std::printf("RAG retrieval demo: %zu SPACEV-like embedding vectors\n", n);

  data::Dataset corpus = data::generate_synthetic(data::spacev1b_like(n));
  ivf::IvfBuildOptions build;
  build.n_clusters = 128;
  build.pq_m = 20;
  ivf::IvfIndex index = ivf::IvfIndex::build(corpus, build);

  const std::size_t nprobe = 16;
  core::UpAnnsOptions opts = core::UpAnnsOptions::upanns();
  opts.n_dpus = 64;
  opts.nprobe = nprobe;
  opts.k = 5;

  // Build against the *initial* topic distribution.
  core::UpAnnsBackend backend(index, stats_from(index, corpus, 0, nprobe),
                              opts);

  // QPS is extrapolated to a 1B-point corpus on 7 DIMMs so the balance
  // effects show at the scale the paper measures (see DESIGN.md).
  const double per_list_factor =
      (1e9 / 4096.0) /
      (static_cast<double>(n) / static_cast<double>(index.n_clusters()));
  const double dpu_factor =
      static_cast<double>(opts.n_dpus) / 896.0;

  std::printf("\n%-28s %12s %14s %10s\n", "phase", "QPS@1B",
              "balance(max/avg)", "latency_ms");
  const auto serve = [&](const char* phase, std::size_t shift) {
    data::WorkloadSpec spec;
    spec.n_queries = 128;
    spec.seed = 7 + shift;
    spec.popularity_shift = shift;
    const auto wl = data::generate_workload(corpus, spec);
    const auto r =
        backend.search(wl.queries).at_scale(per_list_factor, dpu_factor);
    std::printf("%-28s %12.1f %14.2f %10.3f\n", phase, r.qps,
                r.pim->schedule_balance,
                r.times.total() / static_cast<double>(wl.queries.n) * 1e3);
    return r;
  };

  serve("steady-state traffic", 0);

  // Topic drift: the hot regions move; placement is now stale.
  std::printf("\n-- query-topic drift (popularity shifted by 40 regions) --\n");
  serve("drifted, stale placement", 40);

  // Adaptive relocation (Sec 4.1.2): rebuild replicas for the new profile.
  backend.engine().relocate(stats_from(index, corpus, 40, nprobe));
  const auto after = serve("drifted, after relocate", 40);

  // Sanity: quality unaffected by relocation.
  data::WorkloadSpec spec;
  spec.n_queries = 64;
  spec.seed = 47;
  spec.popularity_shift = 40;
  const auto wl = data::generate_workload(corpus, spec);
  const auto gt = data::exact_topk(corpus, wl.queries, 5);
  const auto r = backend.search(wl.queries);
  std::printf("\nrecall@5 after relocation: %.3f (top-%zu contexts per "
              "prompt)\n",
              r.recall_against(gt, 5), opts.k);
  std::printf("retrieved context ids for prompt 0:");
  for (const auto& nb : r.neighbors[0]) std::printf(" %u", nb.id);
  std::printf("\n");
  (void)after;
  return 0;
}
