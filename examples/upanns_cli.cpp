// upanns_cli — a small command-line front end over the library, the way a
// downstream user would drive it without writing C++:
//
//   upanns_cli gen    --family sift --n 50000 --out base.fvecs
//   upanns_cli build  --data base.fvecs --clusters 128 --m 16 --out index.bin
//   upanns_cli tune   --index index.bin --data base.fvecs --recall 0.8
//   upanns_cli search --index index.bin --data base.fvecs --nprobe 16
//                     --queries 64 --k 10 --dpus 128 --system upanns
//                     [--metrics-out metrics.json] [--prom-out metrics.prom]
//   upanns_cli serve  --index index.bin --data base.fvecs --queries 512
//                     --batch 64 [--hosts 4] [--no-overlap]
//                     [--online --target-qps 2000 --deadline-ms 2
//                      --queue-cap 1024 --clients 4]
//                     [--update-rate 0.05 [--compact-ratio 0.3]]
//                     [--trace-out trace.json] [--metrics-out metrics.json]
//                     [--spans-out spans.json] [--prom-out metrics.prom]
//                     [--stats-every N --window-seconds W --window-slots S]
//   upanns_cli stats  --metrics metrics.json [--prom-out metrics.prom]
//                     [--watch --interval-ms 1000 --iterations K]
//
// `search` drives any backend (cpu, gpu, upanns, naive, multihost) through
// the common core::AnnsBackend interface; `serve` streams query batches
// through the double-buffered core::BatchPipeline — or, with `--hosts N`,
// through the overlapped multi-host core::MultiHostBatchPipeline (network
// modeled via --net-gbps / --net-latency-us). `serve --online` runs the
// real-threaded continuous-batching front-end instead (src/serve/):
// per-client submitter threads offer Poisson traffic at --target-qps,
// batches close at --batch requests or --deadline-ms after the oldest one,
// the bounded queue (--queue-cap) rejects overload, and shutdown drains. `--update-rate R` mixes writes
// into the stream (single- or multi-host): before each batch, ~R * batch_size
// mutations are issued — half inserts of perturbed base vectors under fresh
// ids, half removes of random live ids — then applied as one incremental
// MRAM patch instead of a full reload; lists whose tombstone share exceeds
// --compact-ratio are compacted along the way.
//
// Telemetry outputs: `--trace-out` writes a Chrome/Perfetto trace of the run
// (load at ui.perfetto.dev); `--metrics-out` writes the report plus a
// metrics-registry snapshot (with build provenance) as JSON; `--spans-out`
// writes the per-query span forest (obs/span.hpp); `--prom-out` writes the
// snapshot as Prometheus text exposition. When spans are recorded the
// Perfetto trace nests them as async events. `--stats-every N` replays the
// run's simulated timeline after the fact, printing the rolling-window
// p50/p99/p999 and rate every N batches (`--window-seconds` /
// `--window-slots` shape the window). Existing output files are never
// silently overwritten — pass `--force` to clobber. `stats` renders a
// previously written metrics JSON as a table (and optionally Prometheus
// text); `--watch` re-reads the file periodically, tailing a live run.
//
// Flags accept both `--key value` and `--key=value`; `--log-level
// debug|info|warn|error` (or the UPANNS_LOG environment variable) sets log
// verbosity anywhere.
//
// `gen` writes TEXMEX .fvecs files, so real SIFT/DEEP/SPACEV slices can be
// substituted for the synthetic data at any step.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/simd_dispatch.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/multihost.hpp"
#include "core/pipeline.hpp"
#include "core/tuner.hpp"
#include "data/ground_truth.hpp"
#include "data/io.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "metrics/report.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/provenance.hpp"
#include "obs/report_json.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "serve/executors.hpp"
#include "serve/server.hpp"

using namespace upanns;

namespace {

/// A bad flag value, not a runtime failure: main() maps this to exit code 2
/// (as opposed to 3 for everything else) so scripts can tell the two apart.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::map<std::string, std::string> kv;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) break;
      std::string key(argv[i] + 2);
      // --key=value binds in place; bare flags (e.g. --no-overlap) read
      // as "1"; otherwise the next argv entry is the value.
      if (const auto eq = key.find('='); eq != std::string::npos) {
        a.kv.insert_or_assign(key.substr(0, eq), key.substr(eq + 1));
        i += 1;
      } else if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        a.kv.insert_or_assign(std::move(key), std::string("1"));
        i += 1;
      } else {
        a.kv.insert_or_assign(std::move(key), std::string(argv[i + 1]));
        i += 2;
      }
    }
    return a;
  }
  bool flag(const std::string& key) const { return kv.count(key) > 0; }
  std::string str(const std::string& key, const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  std::size_t num(const std::string& key, std::size_t dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double real(const std::string& key, double dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
};

/// Read a numeric flag and reject NaN/inf/out-of-range values up front —
/// a mistyped `--deadline-ms abc` (strtod -> 0) must not silently serve
/// with a zero deadline.
double checked_real(const Args& a, const std::string& key, double dflt,
                    bool allow_zero = false) {
  const double v = a.real(key, dflt);
  if (!std::isfinite(v) || (allow_zero ? v < 0 : !(v > 0))) {
    throw UsageError("--" + key + " must be a finite " +
                     (allow_zero ? "non-negative" : "positive") + " number");
  }
  return v;
}

/// Like checked_real for count-valued flags: the whole token must parse as
/// a base-10 integer >= `min` (strtoull's silent `abc -> 0` must not pick a
/// thread count).
std::size_t checked_count(const Args& a, const std::string& key,
                          std::size_t dflt, std::size_t min = 1) {
  const auto it = a.kv.find(key);
  if (it == a.kv.end()) return dflt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || v < min) {
    throw UsageError("--" + key + " must be an integer >= " +
                     std::to_string(min));
  }
  return static_cast<std::size_t>(v);
}

/// --adapt[=off|copies|full]: bare `--adapt` (parsed as "1") selects the
/// default online mode, copies. Anything else unknown is a usage error.
core::AdaptMode parse_adapt_flag(const Args& a) {
  if (!a.flag("adapt")) return core::AdaptMode::kOff;
  const std::string text = a.str("adapt", "off");
  if (text == "1") return core::AdaptMode::kCopies;
  core::AdaptMode mode;
  if (!core::parse_adapt_mode(text, &mode)) {
    throw UsageError("--adapt must be off, copies or full");
  }
  return mode;
}

/// --adapt-window N: controller window length (and decision cooldown) in
/// batches. checked_count rejects garbage and 0; strtoull would wrap a
/// leading minus to a huge count, so reject that explicitly.
std::size_t adapt_window_flag(const Args& a) {
  const auto it = a.kv.find("adapt-window");
  if (it != a.kv.end() && !it->second.empty() && it->second[0] == '-') {
    throw UsageError("--adapt-window must be an integer >= 1");
  }
  return checked_count(a, "adapt-window", 16);
}

data::DatasetFamily family_of(const std::string& name) {
  if (name == "deep") return data::DatasetFamily::kDeepLike;
  if (name == "spacev") return data::DatasetFamily::kSpacevLike;
  return data::DatasetFamily::kSiftLike;
}

/// Fail fast (before the run burns any time) when an output path would
/// clobber an existing file and --force was not passed. The actual writes
/// go through obs::write_text_file_guarded as a second line of defense.
void guard_outputs(const std::vector<std::string>& paths, bool force) {
  if (force) return;
  for (const auto& p : paths) {
    if (!p.empty() && obs::file_exists(p)) {
      common::log_warn("output file ", p, " already exists");
      throw std::runtime_error("refusing to overwrite existing file " + p +
                               " (pass --force to overwrite)");
    }
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// {"provenance": ..., "<report_key>": ..., "metrics": ...} — the common
/// shape of every CLI metrics artifact; bench/metrics_diff keys off the
/// provenance header to refuse cross-schema comparisons.
void write_metrics_json(const std::string& path, const char* report_key,
                        const std::string& report_json,
                        const obs::MetricsSnapshot& snapshot, bool force) {
  obs::JsonWriter w;
  w.begin_object();
  obs::append_provenance(w);
  w.key(report_key).raw(report_json);
  w.key("metrics").raw(obs::snapshot_json(snapshot));
  w.end_object();
  obs::write_text_file_guarded(path, w.take(), force);
  std::printf("wrote metrics JSON to %s\n", path.c_str());
}

/// One batch's contribution to the post-run rolling-window replay.
struct BatchSample {
  double t_end = 0;    ///< simulated completion time of the batch
  double latency = 0;  ///< per-query latency attributed to the batch
  std::uint64_t nq = 0;
};

/// `--stats-every N`: replay the run's simulated timeline through a fresh
/// rolling window and print the live p50/p99/p999/rate every N batches —
/// the same numbers a scrape of the wired-in window would have shown at
/// those simulated instants.
void replay_window_stats(const obs::WindowOptions& wopts, std::size_t every,
                         const std::vector<BatchSample>& samples) {
  obs::WindowedHistogram win(wopts, obs::Histogram::default_time_bounds());
  std::printf("rolling window stats (width %.1f s, %zu slots), every %zu "
              "batch(es):\n",
              wopts.width_seconds, wopts.slots, every);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    win.observe(samples[i].t_end, samples[i].latency, samples[i].nq);
    if ((i + 1) % every == 0 || i + 1 == samples.size()) {
      std::printf("  t=%10.3f ms  p50=%.4f ms  p99=%.4f ms  p999=%.4f ms  "
                  "rate=%.1f q/s  n=%llu\n",
                  samples[i].t_end * 1e3, win.quantile(0.5) * 1e3,
                  win.quantile(0.99) * 1e3, win.quantile(0.999) * 1e3,
                  win.rate(),
                  static_cast<unsigned long long>(win.count()));
    }
  }
}

/// Mixed read/write stream shared by the single- and multi-host serve
/// paths: before batch b, issue ~rate * batch_size writes (half fresh-id
/// inserts of perturbed base rows, half removes of random live ids) against
/// any target exposing upsert/remove/compact, then compact.
struct UpdateStream {
  const data::Dataset& ds;
  const std::vector<data::Dataset>& batches;
  double rate;
  double compact_ratio;
  common::Rng rng;
  std::vector<std::uint32_t> live;
  std::uint32_t next_id = 0;
  std::size_t n_upserts = 0, n_removes = 0;

  UpdateStream(const data::Dataset& ds, const std::vector<data::Dataset>& b,
               double rate, double compact_ratio, std::size_t seed,
               std::size_t n_points)
      : ds(ds), batches(b), rate(rate), compact_ratio(compact_ratio),
        rng(seed * 7919 + 13), live(n_points) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      live[i] = static_cast<std::uint32_t>(i);
      next_id = std::max(next_id, live[i] + 1);
    }
  }

  template <typename Target>
  void issue(Target& target, std::size_t b) {
    const std::size_t writes = static_cast<std::size_t>(
        rate * static_cast<double>(batches[b].n) + 0.5);
    std::vector<float> vec(ds.dim);
    for (std::size_t w = 0; w < writes; ++w) {
      if (w % 2 == 0 || live.empty()) {
        const float* base = ds.row(rng.below(ds.n));
        for (std::size_t j = 0; j < ds.dim; ++j) {
          vec[j] = base[j] + rng.uniform(-0.05f, 0.05f);
        }
        const std::uint32_t id = next_id++;
        target.upsert({&id, 1}, {vec.data(), vec.size()});
        live.push_back(id);
        ++n_upserts;
      } else {
        const std::size_t pick = rng.below(live.size());
        const std::uint32_t id = live[pick];
        live[pick] = live.back();
        live.pop_back();
        target.remove({&id, 1});
        ++n_removes;
      }
    }
    target.compact(compact_ratio);
  }
};

int cmd_gen(const Args& a) {
  const auto family = family_of(a.str("family", "sift"));
  data::SyntheticSpec spec;
  spec.family = family;
  spec.n = a.num("n", 50'000);
  spec.seed = a.num("seed", 7);
  spec.size_sigma = data::family_size_sigma(family);
  spec.dense_core_frac = data::family_dense_core_frac(family);
  // Cluster-contiguous storage makes `serve --shift` a real cluster-level
  // drift (see SyntheticSpec::shuffle) — the adaptive-replication demo.
  spec.shuffle = !a.flag("cluster-order");
  const data::Dataset ds = data::generate_synthetic(spec);
  const std::string out = a.str("out", "base.fvecs");
  data::write_fvecs(out, ds);
  std::printf("wrote %zu x %zu-d %s vectors to %s\n", ds.n, ds.dim,
              data::family_name(family), out.c_str());
  return 0;
}

int cmd_build(const Args& a) {
  const data::Dataset ds = data::read_fvecs(a.str("data", "base.fvecs"));
  ivf::IvfBuildOptions opts;
  opts.n_clusters = a.num("clusters", 128);
  opts.pq_m = a.num("m", ds.dim % 16 == 0 ? 16 : ds.dim % 12 == 0 ? 12 : 20);
  opts.seed = a.num("seed", 2024);
  // --build-threads 1 forces serial training; N > 1 pins a dedicated pool.
  // Output is identical either way (DESIGN.md §13), so this is purely a
  // resource knob.
  opts.n_threads = checked_count(a, "build-threads", 0);
  const double bf = checked_real(a, "batch-fraction", 1.0);
  if (bf > 1.0) {
    throw UsageError("--batch-fraction must be in (0, 1]");
  }
  opts.coarse_batch_fraction = bf;

  const std::string trace_out = a.str("trace-out", "");
  const std::string metrics_out = a.str("metrics-out", "");
  const bool force = a.flag("force");
  guard_outputs({trace_out, metrics_out}, force);
  obs::MetricsRegistry registry;
  if (!metrics_out.empty()) opts.metrics = &registry;

  ivf::BuildStats bs;
  const ivf::IvfIndex index = ivf::IvfIndex::build(ds, opts, &bs);
  const std::string out = a.str("out", "index.bin");
  index.save(out);
  std::printf("built IVF%zu,PQ%zu over %zu vectors -> %s\n",
              index.n_clusters(), index.pq_m(), index.n_points(), out.c_str());
  std::printf(
      "  build %.3fs (kmeans %.3f assign %.3f residual %.3f pq_train %.3f "
      "encode %.3f) simd=%s\n",
      bs.total_seconds, bs.kmeans_seconds, bs.assign_seconds,
      bs.residual_seconds, bs.pq_train_seconds, bs.encode_seconds,
      common::simd_level_name(common::simd_active_level()));

  if (!trace_out.empty()) {
    obs::write_text_file_guarded(trace_out,
                                 obs::trace_json(obs::build_trace(bs)), force);
    std::printf("wrote build trace to %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::JsonWriter rw;
    rw.begin_object();
    rw.kv("n_clusters", static_cast<std::uint64_t>(index.n_clusters()));
    rw.kv("pq_m", static_cast<std::uint64_t>(index.pq_m()));
    rw.kv("n_points", static_cast<std::uint64_t>(index.n_points()));
    rw.kv("total_seconds", bs.total_seconds);
    rw.end_object();
    write_metrics_json(metrics_out, "build", rw.take(), registry.snapshot(),
                       force);
  }
  return 0;
}

int cmd_tune(const Args& a) {
  const ivf::IvfIndex index = ivf::IvfIndex::load(a.str("index", "index.bin"));
  const data::Dataset ds = data::read_fvecs(a.str("data", "base.fvecs"));
  data::WorkloadSpec wspec;
  wspec.n_queries = a.num("queries", 32);
  wspec.seed = a.num("seed", 99);
  const auto wl = data::generate_workload(ds, wspec);
  core::TuneOptions topts;
  topts.target_recall = a.real("recall", 0.9);
  topts.k = a.num("k", 10);
  const auto gt = data::exact_topk(ds, wl.queries, topts.k);
  const auto result = core::tune_nprobe(index, wl.queries, gt, topts);
  metrics::Table table({"nprobe", "recall@" + std::to_string(topts.k)});
  for (const auto& [nprobe, recall] : result.curve) {
    table.add_row({std::to_string(nprobe), metrics::Table::fmt(recall, 3)});
  }
  table.print();
  if (result.target_met) {
    std::printf("target %.2f met at nprobe=%zu (recall %.3f)\n",
                topts.target_recall, result.nprobe, result.recall);
  } else {
    std::printf("target %.2f NOT reachable; best %.3f at nprobe=%zu\n",
                topts.target_recall, result.recall, result.nprobe);
  }
  return result.target_met ? 0 : 2;
}

int cmd_search(const Args& a) {
  const ivf::IvfIndex index = ivf::IvfIndex::load(a.str("index", "index.bin"));
  const data::Dataset ds = data::read_fvecs(a.str("data", "base.fvecs"));
  data::WorkloadSpec wspec;
  wspec.n_queries = a.num("queries", 64);
  wspec.seed = a.num("seed", 5);
  const auto wl = data::generate_workload(ds, wspec);

  const std::size_t nprobe = a.num("nprobe", 16);
  data::WorkloadSpec hist = wspec;
  hist.seed = wspec.seed + 1;
  hist.n_queries = 4 * wspec.n_queries;
  const auto hw_wl = data::generate_workload(ds, hist);
  const auto stats = ivf::collect_stats(
      index, ivf::filter_batch(index, hw_wl.queries, nprobe));

  core::UpAnnsOptions opts = core::UpAnnsOptions::upanns();
  opts.n_dpus = a.num("dpus", 128);
  opts.n_tasklets = static_cast<unsigned>(a.num("tasklets", 11));
  opts.nprobe = nprobe;
  opts.k = a.num("k", 10);

  const std::string system = a.str("system", "upanns");
  const auto kind = core::backend_kind_of(system);
  if (!kind) {
    std::fprintf(stderr,
                 "unknown --system %s (cpu|gpu|upanns|naive|multihost)\n",
                 system.c_str());
    return 1;
  }
  std::unique_ptr<core::AnnsBackend> backend;
  if (*kind == core::BackendKind::kMultiHost) {
    core::MultiHostOptions mh;
    mh.n_hosts = a.num("hosts", 2);
    mh.per_host = opts;
    backend = core::make_multihost_backend(index, stats, mh);
  } else {
    backend = core::make_backend(*kind, index, stats, opts);
  }
  obs::MetricsRegistry registry;
  const bool force = a.flag("force");
  const std::string metrics_out = a.str("metrics-out", "");
  const std::string prom_out = a.str("prom-out", "");
  guard_outputs({metrics_out, prom_out}, force);
  if (!metrics_out.empty() || !prom_out.empty()) {
    backend->set_metrics(&registry);
  }
  const auto r = backend->search(wl.queries);

  const auto gt = data::exact_topk(ds, wl.queries, opts.k);
  const auto shares = metrics::shares(r.times);
  std::printf("system=%s queries=%zu dpus=%zu tasklets=%u nprobe=%zu k=%zu\n",
              backend->name(), wl.queries.n, opts.n_dpus, opts.n_tasklets,
              nprobe, opts.k);
  std::printf("simulated QPS=%.1f QPS/W=%.2f recall@%zu=%.3f\n", r.qps,
              r.qps_per_watt, opts.k, r.recall_against(gt, opts.k));
  std::printf("stages: LUT %.1f%%, distance %.1f%%, topk %.1f%%, "
              "transfer %.1f%%\n",
              shares.lut_build, shares.distance_calc, shares.topk,
              shares.transfer);
  if (r.pim.has_value()) {
    std::printf("balance %.2f; CAE reduction %.1f%%\n",
                r.pim->schedule_balance, r.pim->length_reduction * 100.0);
    std::printf("stage trace:");
    for (const auto& step : r.trace) {
      std::printf(" %s=%.3fms", step.name, step.seconds * 1e3);
    }
    std::printf("\n");
  }
  if (!metrics_out.empty()) {
    write_metrics_json(metrics_out, "search_report", obs::search_report_json(r),
                       registry.snapshot(), force);
  }
  if (!prom_out.empty()) {
    obs::write_text_file_guarded(prom_out,
                                 obs::prometheus_text(registry.snapshot()),
                                 force);
    std::printf("wrote Prometheus text to %s\n", prom_out.c_str());
  }
  return 0;
}

int cmd_serve(const Args& a) {
  // Non-const: --update-rate mutates the index between batches.
  ivf::IvfIndex index = ivf::IvfIndex::load(a.str("index", "index.bin"));
  const data::Dataset ds = data::read_fvecs(a.str("data", "base.fvecs"));
  // Drift controls, validated up front so a typo exits 2 before any work.
  const core::AdaptMode adapt = parse_adapt_flag(a);
  const std::size_t adapt_window = adapt_window_flag(a);
  data::WorkloadSpec wspec;
  wspec.n_queries = a.num("queries", 512);
  wspec.seed = a.num("seed", 5);
  // --shift rotates the Zipf popularity ranking of the *served* queries
  // only; the placement below is still built from unshifted history, so a
  // nonzero shift serves a deterministically drifted workload — the drift
  // controller's natural trigger.
  wspec.popularity_shift = a.num("shift", 0);
  const auto wl = data::generate_workload(ds, wspec);

  const std::size_t nprobe = a.num("nprobe", 16);
  data::WorkloadSpec hist = wspec;
  hist.seed = wspec.seed + 1;
  hist.popularity_shift = 0;
  const auto hw_wl = data::generate_workload(ds, hist);
  const auto stats = ivf::collect_stats(
      index, ivf::filter_batch(index, hw_wl.queries, nprobe));

  core::UpAnnsOptions opts = core::UpAnnsOptions::upanns();
  opts.n_dpus = a.num("dpus", 128);
  opts.nprobe = nprobe;
  opts.k = a.num("k", 10);

  const bool force = a.flag("force");
  const std::string trace_out = a.str("trace-out", "");
  const std::string metrics_out = a.str("metrics-out", "");
  const std::string spans_out = a.str("spans-out", "");
  const std::string prom_out = a.str("prom-out", "");
  const std::size_t stats_every = a.num("stats-every", 0);
  guard_outputs({trace_out, metrics_out, spans_out, prom_out}, force);

  obs::MetricsRegistry registry;
  registry.set_window_options(
      {checked_real(a, "window-seconds", 10.0), a.num("window-slots", 20)});
  // The registry is attached only when some output actually consumes it —
  // a plain `--trace-out` run stays sink-free and byte-identical to a run
  // with no telemetry flags at all.
  const bool want_metrics =
      !metrics_out.empty() || !prom_out.empty() || stats_every > 0;
  obs::SpanLog spans;
  const bool want_spans = !spans_out.empty();

  const double update_rate =
      checked_real(a, "update-rate", 0.0, /*allow_zero=*/true);

  // --online: real-threaded continuous batching. Per-client submitter
  // threads push single queries at --target-qps (open-loop Poisson); the
  // server's batcher thread closes each batch at --batch requests or
  // --deadline-ms after its oldest request — whichever first — and executes
  // it through the same engine entry points as offline serve, so neighbors
  // are bit-identical to pre-formed batches.
  if (a.flag("online")) {
    if (update_rate > 0) {
      throw UsageError("--update-rate is not supported with --online");
    }
    const double target_qps = checked_real(a, "target-qps", 2000.0);
    serve::BatchPolicy policy;
    policy.max_batch = a.num("batch", 64);
    policy.deadline_seconds = checked_real(a, "deadline-ms", 2.0) * 1e-3;
    if (policy.max_batch == 0) throw UsageError("--batch must be positive");
    const std::size_t queue_cap = a.num("queue-cap", 1024);
    const std::size_t n_clients =
        std::max<std::size_t>(1, a.num("clients", 4));
    const std::size_t hosts = a.num("hosts", 1);

    std::unique_ptr<core::MultiHostUpAnns> cluster;
    std::unique_ptr<core::UpAnnsBackend> backend;
    std::unique_ptr<core::BatchStream> stream;
    serve::BatchExecutor exec;
    if (hosts > 1) {
      if (!trace_out.empty()) {
        throw UsageError(
            "--trace-out requires the single-host pipeline (drop --hosts "
            "or --online)");
      }
      if (adapt != core::AdaptMode::kOff) {
        // The online multi-host executor calls cluster.search() directly —
        // there is no batch stream to host the drift loop.
        throw UsageError(
            "--adapt with --online requires the single-host pipeline "
            "(drop --hosts)");
      }
      core::MultiHostOptions mh;
      mh.n_hosts = hosts;
      mh.per_host = opts;
      mh.network_bandwidth = a.real("net-gbps", 25.0) * 1e9 / 8.0;
      mh.network_latency = a.real("net-latency-us", 50.0) * 1e-6;
      cluster = std::make_unique<core::MultiHostUpAnns>(index, stats, mh);
      if (want_metrics) cluster->set_metrics(&registry);
      exec = [&c = *cluster](const data::Dataset& batch) {
        core::MultiHostReport r = c.search(batch);
        return serve::ExecResult{std::move(r.neighbors), r.seconds};
      };
    } else {
      backend = std::make_unique<core::UpAnnsBackend>(index, stats, opts);
      if (want_metrics) backend->set_metrics(&registry);
      if (want_spans) backend->engine().set_spans(&spans);
      core::BatchPipelineOptions popts;
      popts.overlap = !a.flag("no-overlap");
      popts.adapt = adapt;
      popts.adaptive.window_batches = adapt_window;
      // Wall-clock request latency is booked by the server below; the
      // stream must not also book its simulated per-query latency.
      popts.book_query_latency = false;
      stream = std::make_unique<core::BatchStream>(backend->engine(), popts);
      exec = serve::stream_executor(*stream);
    }

    serve::ServeOptions sopts;
    sopts.dim = wl.queries.dim;
    sopts.policy = policy;
    sopts.queue_capacity = queue_cap;
    sopts.metrics = want_metrics ? &registry : nullptr;
    serve::Server server(std::move(exec), sopts);

    // Each client owns an equal share of the offered rate and pulls the
    // next workload row from a shared counter; rejections (try_submit ->
    // nullopt) are the backpressure signal and are counted by the server.
    std::atomic<std::size_t> next_row{0};
    const double per_client_qps =
        target_qps / static_cast<double>(n_clients);
    std::vector<std::thread> clients;
    clients.reserve(n_clients);
    for (std::size_t c = 0; c < n_clients; ++c) {
      clients.emplace_back([&, c] {
        common::Rng rng(wspec.seed * 1000003 + c);
        for (;;) {
          const std::size_t i =
              next_row.fetch_add(1, std::memory_order_relaxed);
          if (i >= wl.queries.n) break;
          std::this_thread::sleep_for(std::chrono::duration<double>(
              -std::log1p(-rng.uniform()) / per_client_qps));
          (void)server.try_submit({wl.queries.row(i), wl.queries.dim});
        }
      });
    }
    for (auto& t : clients) t.join();
    server.drain();

    const serve::ServeStats sstats = server.stats();
    const serve::ServeSummary summary =
        serve::summarize(server.request_log(), server.batch_log(), policy);
    std::printf("online serve: %zu offered, %llu accepted, %llu rejected, "
                "%llu completed, %llu failed (%zu clients)\n",
                wl.queries.n,
                static_cast<unsigned long long>(sstats.accepted),
                static_cast<unsigned long long>(sstats.rejected),
                static_cast<unsigned long long>(sstats.completed),
                static_cast<unsigned long long>(sstats.failed), n_clients);
    std::printf("batches: %llu (%llu full, %llu deadline, %llu drain), "
                "mean fill %.2f\n",
                static_cast<unsigned long long>(sstats.batches),
                static_cast<unsigned long long>(sstats.full_closes),
                static_cast<unsigned long long>(sstats.deadline_closes),
                static_cast<unsigned long long>(sstats.drain_closes),
                summary.mean_batch_fill);
    std::printf("latency: p50 %.3f ms, p99 %.3f ms, mean %.3f ms, max "
                "%.3f ms (mean queue wait %.3f ms)\n",
                summary.p50 * 1e3, summary.p99 * 1e3, summary.mean * 1e3,
                summary.max * 1e3, summary.mean_queue_wait * 1e3);
    std::printf("achieved %.1f qps of %.1f offered\n", summary.achieved_qps,
                target_qps);

    // Close the stream first: the Perfetto trace carries the pipeline's
    // *simulated* timeline, so the wall-clock request spans appended after
    // it go to --spans-out only.
    if (stream) {
      const auto run = stream->finish();
      if (adapt != core::AdaptMode::kOff) {
        std::uint64_t adapt_bytes = 0;
        double adapt_ms = 0;
        std::size_t actions = 0;
        for (const auto& slot : run.slots) {
          adapt_bytes += slot.adapt_bytes;
          adapt_ms += slot.adapt_seconds * 1e3;
          if (slot.adapt_action != core::AdaptAction::kNone) ++actions;
        }
        std::printf("adapt(%s, window %zu): %zu actions, %llu bytes in "
                    "%.3f ms (full image %llu bytes)\n",
                    core::adapt_mode_name(adapt), adapt_window, actions,
                    static_cast<unsigned long long>(adapt_bytes), adapt_ms,
                    static_cast<unsigned long long>(
                        backend->engine().load_image_bytes()));
      }
      if (!trace_out.empty()) {
        const auto trace = obs::pipeline_trace(run);
        obs::write_text_file_guarded(
            trace_out, obs::trace_json(trace, want_spans ? &spans : nullptr),
            force);
        std::printf("wrote Perfetto trace to %s (load at ui.perfetto.dev)\n",
                    trace_out.c_str());
      }
    }
    if (want_spans) {
      serve::append_request_spans(spans, server.request_log());
      obs::write_text_file_guarded(spans_out, obs::span_log_json(spans),
                                   force);
      std::printf("wrote %zu spans to %s\n", spans.size(), spans_out.c_str());
    }
    if (!metrics_out.empty()) {
      write_metrics_json(metrics_out, "serve_report",
                         serve::serve_report_json(summary, sstats),
                         registry.snapshot(), force);
    }
    if (!prom_out.empty()) {
      obs::write_text_file_guarded(
          prom_out, obs::prometheus_text(registry.snapshot()), force);
      std::printf("wrote Prometheus text to %s\n", prom_out.c_str());
    }
    return 0;
  }

  const auto batches = core::split_batches(wl.queries, a.num("batch", 64));
  const double compact_ratio = a.real("compact-ratio", 0.3);
  UpdateStream updates(ds, batches, update_rate, compact_ratio,
                       a.num("seed", 5), index.n_points());

  // --hosts N > 1: shard across a simulated multi-host cluster and stream
  // the batches through the overlapped multi-host pipeline.
  if (const std::size_t hosts = a.num("hosts", 1); hosts > 1) {
    core::MultiHostOptions mh;
    mh.n_hosts = hosts;
    mh.per_host = opts;
    mh.network_bandwidth = a.real("net-gbps", 25.0) * 1e9 / 8.0;
    mh.network_latency = a.real("net-latency-us", 50.0) * 1e-6;
    // `index` is a non-const lvalue, so this picks the updatable cluster —
    // identical to read-only serving until a mutation is actually issued.
    core::MultiHostUpAnns cluster(index, stats, mh);
    if (want_metrics) cluster.set_metrics(&registry);
    if (want_spans) cluster.set_spans(&spans);

    core::MultiHostBatchPipeline::MutationHook hook;
    if (update_rate > 0) {
      hook = [&](std::size_t b) { updates.issue(cluster, b); };
    }
    core::MultiHostPipelineOptions popts;
    popts.overlap = !a.flag("no-overlap");
    popts.adapt = adapt;
    popts.adaptive.window_batches = adapt_window;
    core::MultiHostBatchPipeline pipeline(cluster, popts);
    const auto run = pipeline.run(batches, hook);

    std::printf("served %zu queries in %zu batches on %zu hosts "
                "(%zu active, %s)\n",
                run.n_queries, run.slots.size(), cluster.n_hosts(),
                cluster.n_active_hosts(),
                run.overlapped ? "overlapped" : "no-overlap");
    std::printf("simulated elapsed %.3f ms (synchronous sum %.3f ms), "
                "QPS=%.1f\n",
                run.elapsed_seconds * 1e3, run.serial_seconds * 1e3, run.qps);
    if (update_rate > 0) {
      std::uint64_t patch_bytes = 0;
      double patch_ms = 0;
      for (const auto& slot : run.slots) {
        patch_bytes += slot.patch_bytes;
        patch_ms += slot.patch_seconds * 1e3;
      }
      std::printf("writes: %zu upserts, %zu removes; %llu patch bytes in "
                  "%.3f ms across the fleet\n",
                  updates.n_upserts, updates.n_removes,
                  static_cast<unsigned long long>(patch_bytes), patch_ms);
    }
    if (adapt != core::AdaptMode::kOff) {
      std::uint64_t adapt_bytes = 0;
      double adapt_ms = 0;
      std::size_t actions = 0;
      for (const auto& slot : run.slots) {
        adapt_bytes += slot.adapt_bytes;
        adapt_ms += slot.adapt_seconds * 1e3;
        if (slot.adapt_action != core::AdaptAction::kNone) ++actions;
      }
      std::printf("adapt(%s, window %zu): %zu actions, %llu bytes in "
                  "%.3f ms across the fleet\n",
                  core::adapt_mode_name(adapt), adapt_window, actions,
                  static_cast<unsigned long long>(adapt_bytes), adapt_ms);
    }
    for (std::size_t i = 0; i < run.slots.size(); ++i) {
      std::printf("  batch %2zu: pre %.4f ms, device %.4f ms, post %.4f ms\n",
                  i, run.slots[i].pre_seconds * 1e3,
                  run.slots[i].device_seconds * 1e3,
                  run.slots[i].post_seconds * 1e3);
      if (i >= 3 && run.slots.size() > 5) {
        std::printf("  ... (%zu more batches)\n", run.slots.size() - i - 1);
        break;
      }
    }
    if (!trace_out.empty()) {
      const auto trace = obs::multihost_trace(run);
      obs::write_text_file_guarded(
          trace_out, obs::trace_json(trace, want_spans ? &spans : nullptr),
          force);
      std::printf("wrote Perfetto trace to %s (load at ui.perfetto.dev)\n",
                  trace_out.c_str());
    }
    if (!spans_out.empty()) {
      obs::write_text_file_guarded(spans_out, obs::span_log_json(spans), force);
      std::printf("wrote %zu spans to %s\n", spans.size(), spans_out.c_str());
    }
    if (!metrics_out.empty()) {
      write_metrics_json(metrics_out, "multihost_pipeline",
                         obs::multi_host_pipeline_json(run),
                         registry.snapshot(), force);
    }
    if (!prom_out.empty()) {
      obs::write_text_file_guarded(prom_out,
                                   obs::prometheus_text(registry.snapshot()),
                                   force);
      std::printf("wrote Prometheus text to %s\n", prom_out.c_str());
    }
    if (stats_every > 0) {
      const auto timeline = core::multihost_timeline(run);
      std::vector<BatchSample> samples(timeline.size());
      for (std::size_t i = 0; i < timeline.size(); ++i) {
        samples[i] = {timeline[i].post_end,
                      timeline[i].post_end - timeline[i].pre_start,
                      batches[i].n};
      }
      replay_window_stats(registry.window_options(), stats_every, samples);
    }
    return 0;
  }

  // `index` is a non-const lvalue, so this picks the updatable backend —
  // identical to read-only serving until a mutation is actually issued.
  core::UpAnnsBackend backend(index, stats, opts);
  if (want_metrics) backend.set_metrics(&registry);
  if (want_spans) backend.engine().set_spans(&spans);

  core::BatchPipelineOptions popts;
  popts.overlap = !a.flag("no-overlap");
  popts.adapt = adapt;
  popts.adaptive.window_batches = adapt_window;
  core::BatchPipeline pipeline(backend.engine(), popts);

  core::BatchPipeline::MutationHook hook;
  if (update_rate > 0) {
    hook = [&](std::size_t b) { updates.issue(backend.engine(), b); };
  }
  const auto run = pipeline.run(batches, hook);

  std::printf("served %zu queries in %zu batches (%s)\n", run.n_queries,
              run.slots.size(), run.overlapped ? "overlapped" : "no-overlap");
  std::printf("simulated elapsed %.3f ms (serial stage sum %.3f ms), "
              "QPS=%.1f\n",
              run.elapsed_seconds * 1e3, run.serial_seconds * 1e3, run.qps);
  if (update_rate > 0) {
    std::uint64_t patch_bytes = 0;
    double patch_ms = 0;
    for (const auto& slot : run.slots) {
      patch_bytes += slot.patch_bytes;
      patch_ms += slot.patch_seconds * 1e3;
    }
    std::printf("writes: %zu upserts, %zu removes; %llu patch bytes in "
                "%.3f ms (full image %llu bytes)\n",
                updates.n_upserts, updates.n_removes,
                static_cast<unsigned long long>(patch_bytes), patch_ms,
                static_cast<unsigned long long>(
                    backend.engine().load_image_bytes()));
  }
  if (adapt != core::AdaptMode::kOff) {
    std::uint64_t adapt_bytes = 0;
    double adapt_ms = 0;
    std::size_t actions = 0;
    for (const auto& slot : run.slots) {
      adapt_bytes += slot.adapt_bytes;
      adapt_ms += slot.adapt_seconds * 1e3;
      if (slot.adapt_action != core::AdaptAction::kNone) ++actions;
    }
    std::printf("adapt(%s, window %zu): %zu actions, %llu bytes in %.3f ms "
                "(full image %llu bytes)\n",
                core::adapt_mode_name(adapt), adapt_window, actions,
                static_cast<unsigned long long>(adapt_bytes), adapt_ms,
                static_cast<unsigned long long>(
                    backend.engine().load_image_bytes()));
  }
  for (std::size_t i = 0; i < run.slots.size(); ++i) {
    if (run.slots[i].patch_seconds > 0) {
      std::printf("  batch %2zu: patch %.4f ms, host %.4f ms, "
                  "device %.4f ms\n",
                  i, run.slots[i].patch_seconds * 1e3,
                  run.slots[i].host_seconds * 1e3,
                  run.slots[i].device_seconds * 1e3);
    } else {
      std::printf("  batch %2zu: host %.4f ms, device %.4f ms\n", i,
                  run.slots[i].host_seconds * 1e3,
                  run.slots[i].device_seconds * 1e3);
    }
    if (i >= 3 && run.slots.size() > 5) {
      std::printf("  ... (%zu more batches)\n", run.slots.size() - i - 1);
      break;
    }
  }
  if (!trace_out.empty()) {
    const auto trace = obs::pipeline_trace(run);
    obs::write_text_file_guarded(
        trace_out, obs::trace_json(trace, want_spans ? &spans : nullptr),
        force);
    std::printf("wrote Perfetto trace to %s (load at ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  if (!spans_out.empty()) {
    obs::write_text_file_guarded(spans_out, obs::span_log_json(spans), force);
    std::printf("wrote %zu spans to %s\n", spans.size(), spans_out.c_str());
  }
  if (!metrics_out.empty()) {
    write_metrics_json(metrics_out, "batch_pipeline",
                       obs::batch_pipeline_json(run), registry.snapshot(),
                       force);
  }
  if (!prom_out.empty()) {
    obs::write_text_file_guarded(prom_out,
                                 obs::prometheus_text(registry.snapshot()),
                                 force);
    std::printf("wrote Prometheus text to %s\n", prom_out.c_str());
  }
  if (stats_every > 0) {
    const auto timeline = obs::pipeline_timeline(run);
    std::vector<BatchSample> samples(timeline.size());
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      samples[i] = {timeline[i].device_end,
                    timeline[i].device_end - timeline[i].host_start,
                    batches[i].n};
    }
    replay_window_stats(registry.window_options(), stats_every, samples);
  }
  return 0;
}

/// Render one metrics snapshot (parsed back from a metrics JSON artifact)
/// as stdout tables.
void print_snapshot(const obs::MetricsSnapshot& s) {
  if (!s.counters.empty()) {
    metrics::Table t({"counter", "value"});
    for (const auto& c : s.counters) {
      t.add_row({c.name, std::to_string(c.value)});
    }
    t.print();
  }
  if (!s.gauges.empty()) {
    metrics::Table t({"gauge", "value"});
    for (const auto& g : s.gauges) {
      t.add_row({g.name, metrics::Table::fmt(g.value, 6)});
    }
    t.print();
  }
  if (!s.histograms.empty()) {
    metrics::Table t({"histogram", "count", "mean", "p50", "p90", "p99"});
    for (const auto& h : s.histograms) {
      const double mean =
          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      t.add_row({h.name, std::to_string(h.count), metrics::Table::fmt(mean, 6),
                 metrics::Table::fmt(h.p50, 6), metrics::Table::fmt(h.p90, 6),
                 metrics::Table::fmt(h.p99, 6)});
    }
    t.print();
  }
  if (!s.windows.empty()) {
    metrics::Table t(
        {"window", "width_s", "count", "rate", "p50", "p99", "p999"});
    for (const auto& w : s.windows) {
      t.add_row({w.name, metrics::Table::fmt(w.width_seconds, 1),
                 std::to_string(w.count), metrics::Table::fmt(w.rate, 1),
                 metrics::Table::fmt(w.p50, 6), metrics::Table::fmt(w.p99, 6),
                 metrics::Table::fmt(w.p999, 6)});
    }
    t.print();
  }
}

int cmd_stats(const Args& a) {
  const std::string path = a.str("metrics", "");
  if (path.empty()) {
    std::fprintf(stderr, "stats: --metrics M.json is required\n");
    return 1;
  }
  const bool force = a.flag("force");
  const bool watch = a.flag("watch");
  const std::string prom_out = a.str("prom-out", "");
  const std::size_t interval_ms = a.num("interval-ms", 1000);
  // --watch with no --iterations tails forever (ctrl-C to stop); a bare
  // `stats` prints once.
  const std::size_t iterations = a.num("iterations", watch ? 0 : 1);
  guard_outputs({prom_out}, force);

  std::size_t iter = 0;
  for (;;) {
    const obs::JsonValue doc = obs::json_parse(read_text_file(path));
    // Accept either a full CLI artifact ({"provenance", "<report>",
    // "metrics"}) or a bare snapshot document.
    const obs::JsonValue& snap_json =
        doc.has("metrics") ? doc.at("metrics") : doc;
    const obs::MetricsSnapshot snap = obs::snapshot_from_json(snap_json);

    if (iter > 0) std::printf("\n");
    if (doc.has("provenance")) {
      const auto& p = doc.at("provenance");
      std::printf("%s  (schema %s, commit %s, %s build)\n", path.c_str(),
                  p.at("schema_version").string.c_str(),
                  p.at("git_sha").string.c_str(),
                  p.at("build_type").string.c_str());
    } else {
      std::printf("%s\n", path.c_str());
    }
    print_snapshot(snap);

    if (!prom_out.empty()) {
      // First write honors the overwrite guard; later --watch refreshes of
      // the same file intentionally overwrite our own output.
      obs::write_text_file_guarded(prom_out, obs::prometheus_text(snap),
                                   force || iter > 0);
      if (iter == 0) {
        std::printf("wrote Prometheus text to %s\n", prom_out.c_str());
      }
    }
    ++iter;
    if (iterations > 0 && iter >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: upanns_cli <gen|build|tune|search|serve|stats> [--key value ...]\n"
               "  gen    --family sift|deep|spacev --n N --out F.fvecs\n"
               "         [--cluster-order]  (storage follows clusters; makes\n"
               "          serve --shift a real cluster-popularity drift)\n"
               "  build  --data F.fvecs --clusters C --m M --out I.bin\n"
               "         [--build-threads N] [--batch-fraction F]\n"
               "         [--trace-out T.json] [--metrics-out M.json]\n"
               "  tune   --index I.bin --data F.fvecs --recall R --k K\n"
               "  search --index I.bin --data F.fvecs --nprobe P --queries Q\n"
               "         --system cpu|gpu|upanns|naive|multihost [--hosts N]\n"
               "         [--metrics-out M.json] [--prom-out M.prom]\n"
               "  serve  --index I.bin --data F.fvecs --queries Q --batch B\n"
               "         [--hosts N --net-gbps G --net-latency-us U]\n"
               "         [--update-rate R --compact-ratio C]\n"
               "         [--adapt[=off|copies|full] --adapt-window N "
               "--shift S]\n"
               "         [--online --target-qps Q --deadline-ms D\n"
               "          --queue-cap C --clients K]\n"
               "         [--no-overlap] [--trace-out T.json] [--metrics-out M.json]\n"
               "         [--spans-out S.json] [--prom-out M.prom]\n"
               "         [--stats-every N --window-seconds W --window-slots S]\n"
               "  stats  --metrics M.json [--prom-out M.prom]\n"
               "         [--watch --interval-ms MS --iterations K]\n"
               "common: --log-level debug|info|warn|error (or UPANNS_LOG env);\n"
               "        --simd scalar|sse2|avx2 pins kernel dispatch (or\n"
               "        UPANNS_SIMD env); --force overwrites existing files\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  if (const std::string lvl = args.str("log-level", ""); !lvl.empty()) {
    if (const auto parsed = common::parse_log_level(lvl)) {
      common::set_log_level(*parsed);
    } else {
      std::fprintf(stderr, "unknown --log-level %s (debug|info|warn|error)\n",
                   lvl.c_str());
      return 1;
    }
  }
  try {
    // --simd pins the kernel dispatch level for the whole run (build and
    // serve paths alike); the UPANNS_SIMD env var is the non-CLI spelling.
    if (const std::string simd = args.str("simd", ""); !simd.empty()) {
      common::SimdLevel lvl;
      if (!common::parse_simd_level(simd, &lvl)) {
        throw UsageError("unknown --simd " + simd + " (scalar|sse2|avx2)");
      }
      common::set_simd_level(lvl);
    }
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "search") return cmd_search(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "stats") return cmd_stats(args);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
