// upanns_cli — a small command-line front end over the library, the way a
// downstream user would drive it without writing C++:
//
//   upanns_cli gen    --family sift --n 50000 --out base.fvecs
//   upanns_cli build  --data base.fvecs --clusters 128 --m 16 --out index.bin
//   upanns_cli tune   --index index.bin --data base.fvecs --recall 0.8
//   upanns_cli search --index index.bin --data base.fvecs --nprobe 16 \
//                     --queries 64 --k 10 --dpus 128
//
// `gen` writes TEXMEX .fvecs files, so real SIFT/DEEP/SPACEV slices can be
// substituted for the synthetic data at any step.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/engine.hpp"
#include "core/tuner.hpp"
#include "data/ground_truth.hpp"
#include "data/io.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "metrics/report.hpp"

using namespace upanns;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) break;
      a.kv[argv[i] + 2] = argv[i + 1];
    }
    return a;
  }
  std::string str(const std::string& key, const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  std::size_t num(const std::string& key, std::size_t dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double real(const std::string& key, double dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
};

data::DatasetFamily family_of(const std::string& name) {
  if (name == "deep") return data::DatasetFamily::kDeepLike;
  if (name == "spacev") return data::DatasetFamily::kSpacevLike;
  return data::DatasetFamily::kSiftLike;
}

int cmd_gen(const Args& a) {
  const auto family = family_of(a.str("family", "sift"));
  data::SyntheticSpec spec;
  spec.family = family;
  spec.n = a.num("n", 50'000);
  spec.seed = a.num("seed", 7);
  spec.size_sigma = data::family_size_sigma(family);
  spec.dense_core_frac = data::family_dense_core_frac(family);
  const data::Dataset ds = data::generate_synthetic(spec);
  const std::string out = a.str("out", "base.fvecs");
  data::write_fvecs(out, ds);
  std::printf("wrote %zu x %zu-d %s vectors to %s\n", ds.n, ds.dim,
              data::family_name(family), out.c_str());
  return 0;
}

int cmd_build(const Args& a) {
  const data::Dataset ds = data::read_fvecs(a.str("data", "base.fvecs"));
  ivf::IvfBuildOptions opts;
  opts.n_clusters = a.num("clusters", 128);
  opts.pq_m = a.num("m", ds.dim % 16 == 0 ? 16 : ds.dim % 12 == 0 ? 12 : 20);
  opts.seed = a.num("seed", 2024);
  const ivf::IvfIndex index = ivf::IvfIndex::build(ds, opts);
  const std::string out = a.str("out", "index.bin");
  index.save(out);
  std::printf("built IVF%zu,PQ%zu over %zu vectors -> %s\n",
              index.n_clusters(), index.pq_m(), index.n_points(), out.c_str());
  return 0;
}

int cmd_tune(const Args& a) {
  const ivf::IvfIndex index = ivf::IvfIndex::load(a.str("index", "index.bin"));
  const data::Dataset ds = data::read_fvecs(a.str("data", "base.fvecs"));
  data::WorkloadSpec wspec;
  wspec.n_queries = a.num("queries", 32);
  wspec.seed = a.num("seed", 99);
  const auto wl = data::generate_workload(ds, wspec);
  core::TuneOptions topts;
  topts.target_recall = a.real("recall", 0.9);
  topts.k = a.num("k", 10);
  const auto gt = data::exact_topk(ds, wl.queries, topts.k);
  const auto result = core::tune_nprobe(index, wl.queries, gt, topts);
  metrics::Table table({"nprobe", "recall@" + std::to_string(topts.k)});
  for (const auto& [nprobe, recall] : result.curve) {
    table.add_row({std::to_string(nprobe), metrics::Table::fmt(recall, 3)});
  }
  table.print();
  if (result.target_met) {
    std::printf("target %.2f met at nprobe=%zu (recall %.3f)\n",
                topts.target_recall, result.nprobe, result.recall);
  } else {
    std::printf("target %.2f NOT reachable; best %.3f at nprobe=%zu\n",
                topts.target_recall, result.recall, result.nprobe);
  }
  return result.target_met ? 0 : 2;
}

int cmd_search(const Args& a) {
  const ivf::IvfIndex index = ivf::IvfIndex::load(a.str("index", "index.bin"));
  const data::Dataset ds = data::read_fvecs(a.str("data", "base.fvecs"));
  data::WorkloadSpec wspec;
  wspec.n_queries = a.num("queries", 64);
  wspec.seed = a.num("seed", 5);
  const auto wl = data::generate_workload(ds, wspec);

  const std::size_t nprobe = a.num("nprobe", 16);
  data::WorkloadSpec hist = wspec;
  hist.seed = wspec.seed + 1;
  hist.n_queries = 4 * wspec.n_queries;
  const auto hw_wl = data::generate_workload(ds, hist);
  const auto stats = ivf::collect_stats(
      index, ivf::filter_batch(index, hw_wl.queries, nprobe));

  core::UpAnnsOptions opts = core::UpAnnsOptions::upanns();
  opts.n_dpus = a.num("dpus", 128);
  opts.n_tasklets = static_cast<unsigned>(a.num("tasklets", 11));
  opts.nprobe = nprobe;
  opts.k = a.num("k", 10);
  core::UpAnnsEngine engine(index, stats, opts);
  const auto r = engine.search(wl.queries);

  const auto gt = data::exact_topk(ds, wl.queries, opts.k);
  const auto shares = metrics::shares(r.times);
  std::printf("queries=%zu dpus=%zu tasklets=%u nprobe=%zu k=%zu\n",
              wl.queries.n, opts.n_dpus, opts.n_tasklets, nprobe, opts.k);
  std::printf("simulated QPS=%.1f QPS/W=%.2f recall@%zu=%.3f\n", r.qps,
              r.qps_per_watt, opts.k,
              data::recall_at_k(gt, r.neighbors, opts.k));
  std::printf("stages: LUT %.1f%%, distance %.1f%%, topk %.1f%%, "
              "transfer %.1f%%; balance %.2f; CAE reduction %.1f%%\n",
              shares.lut_build, shares.distance_calc, shares.topk,
              shares.transfer, r.schedule_balance,
              r.length_reduction * 100.0);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: upanns_cli <gen|build|tune|search> [--key value ...]\n"
               "  gen    --family sift|deep|spacev --n N --out F.fvecs\n"
               "  build  --data F.fvecs --clusters C --m M --out I.bin\n"
               "  tune   --index I.bin --data F.fvecs --recall R --k K\n"
               "  search --index I.bin --data F.fvecs --nprobe P --queries Q\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "search") return cmd_search(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
