// Quickstart: build an IVFPQ index over a synthetic SIFT-like dataset, run
// the same query batch through the Faiss-CPU backend and through UpANNS on
// the simulated 7-DIMM UPMEM system — both behind core::AnnsBackend — and
// compare recall, QPS and energy efficiency.
//
//   ./examples/quickstart [n_points] [n_queries]
#include <cstdio>
#include <cstdlib>

#include "baselines/cpu_cost_model.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "data/ground_truth.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "pim/energy.hpp"

using namespace upanns;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const std::size_t nq = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 96;

  std::printf("UpANNS quickstart: %zu SIFT-like vectors, %zu queries\n", n, nq);

  // 1. Data + index (offline phase).
  data::Dataset base = data::generate_synthetic(data::sift1b_like(n));
  ivf::IvfBuildOptions build;
  build.n_clusters = 128;
  build.pq_m = base.dim / 8;  // 16 codes for 128-dim SIFT-like vectors
  ivf::IvfIndex index = ivf::IvfIndex::build(base, build);
  std::printf("index: %zu clusters, m=%zu codes/vector\n", index.n_clusters(),
              index.pq_m());

  // 2. Query workload with Zipfian cluster popularity; the history feeds the
  //    placement stage.
  data::WorkloadSpec wspec;
  wspec.n_queries = nq;
  data::QueryWorkload wl = data::generate_workload(base, wspec);
  data::WorkloadSpec hist_spec = wspec;
  hist_spec.seed = wspec.seed + 1;
  hist_spec.n_queries = 512;
  const auto hist_wl = data::generate_workload(base, hist_spec);
  const auto history = ivf::filter_batch(index, hist_wl.queries, 8);
  const ivf::ClusterStats stats = ivf::collect_stats(index, history);

  // 3. Both systems behind the common backend interface (64 DPUs for a
  //    quick run; nprobe 8 is ~6% of clusters, near the paper's fraction).
  core::UpAnnsOptions opts = core::UpAnnsOptions::upanns();
  opts.n_dpus = 64;
  opts.nprobe = 8;
  opts.k = 10;
  auto cpu = core::make_backend(core::BackendKind::kCpuIvfpq, index, stats, opts);
  auto pim = core::make_backend(core::BackendKind::kUpAnns, index, stats, opts);
  const auto cpu_res = cpu->search(wl.queries);
  const auto pim_res = pim->search(wl.queries);

  // 4. Accuracy vs exact ground truth.
  const auto gt = data::exact_topk(base, wl.queries, opts.k);
  const double recall_cpu = cpu_res.recall_against(gt, opts.k);
  const double recall_pim = pim_res.recall_against(gt, opts.k);

  std::printf("\n-- measured at demo scale (%zu points) --\n", n);
  std::printf("%-12s %10s %12s %10s\n", "system", "QPS", "QPS/W", "recall@10");
  std::printf("%-12s %10.1f %12.3f %10.3f\n", cpu->name(), cpu_res.qps,
              cpu_res.qps_per_watt, recall_cpu);
  std::printf("%-12s %10.1f %12.3f %10.3f\n", pim->name(), pim_res.qps,
              pim_res.qps_per_watt, recall_pim);

  // At demo scale the whole index fits the CPU's caches, so the CPU wins;
  // the paper's regime is 1B points where the CPU is bandwidth-bound.
  // Extrapolate both systems' linear scan work to 1B (see DESIGN.md).
  const double per_list_factor =
      (1e9 / 4096.0) /
      (static_cast<double>(n) / static_cast<double>(index.n_clusters()));
  const auto cpu_1b = baselines::CpuCostModel::stage_times([&] {
    auto p = cpu_res.cpu->profile;
    p.total_candidates = static_cast<std::size_t>(
        static_cast<double>(p.total_candidates) * per_list_factor);
    p.dataset_n = 1'000'000'000;
    p.n_clusters = 4096;
    return p;
  }());
  // dpu_factor = 64 simulated DPUs / 896 target DPUs (7 DIMMs).
  const auto pim_1b = pim_res.at_scale(per_list_factor, opts.n_dpus / 896.0);
  const double cpu_1b_qps = static_cast<double>(nq) / cpu_1b.total();

  std::printf("\n-- extrapolated to 1B points (7 UPMEM DIMMs vs Table-1 CPU) --\n");
  std::printf("%-12s %10.1f %12.3f\n", "Faiss-CPU", cpu_1b_qps,
              pim::qps_per_watt(cpu_1b_qps, pim::Platform::kCpu));
  std::printf("%-12s %10.1f %12.3f\n", "UpANNS", pim_1b.qps,
              pim_1b.qps_per_watt);
  std::printf("\nUpANNS speedup over CPU at 1B scale: %.2fx\n",
              pim_1b.qps / cpu_1b_qps);
  std::printf("CAE length reduction: %.1f%%, top-k comparisons pruned: %llu\n",
              pim_res.pim->length_reduction * 100.0,
              static_cast<unsigned long long>(pim_res.pim->merge_pruned));
  std::printf("DPU workload balance (max/mean): %.3f\n",
              pim_res.pim->schedule_balance);
  return 0;
}
