// A guided tour of UpANNS's four optimizations: starting from PIM-naive,
// enable Opt1 (placement + scheduling), Opt2 defaults (11 tasklets, 16-vector
// MRAM reads), Opt3 (co-occurrence aware encoding) and Opt4 (top-k pruning)
// one at a time and watch simulated throughput and the per-stage breakdown
// respond. Results stay identical across all configurations — the
// optimizations change *where time goes*, not *what is retrieved*.
//
//   ./examples/ablation_tour [n_points]
#include <cstdio>
#include <cstdlib>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "metrics/report.hpp"

using namespace upanns;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80000;
  std::printf("Ablation tour: %zu DEEP-like vectors, 64 simulated DPUs\n", n);

  data::Dataset base = data::generate_synthetic(data::deep1b_like(n));
  ivf::IvfBuildOptions build;
  build.n_clusters = 128;
  build.pq_m = 12;
  ivf::IvfIndex index = ivf::IvfIndex::build(base, build);

  data::WorkloadSpec hist;
  hist.n_queries = 512;
  hist.seed = 3;
  const auto hw = data::generate_workload(base, hist);
  const auto stats =
      ivf::collect_stats(index, ivf::filter_batch(index, hw.queries, 16));

  data::WorkloadSpec spec;
  spec.n_queries = 128;
  spec.seed = 8;
  const auto wl = data::generate_workload(base, spec);

  struct Step {
    const char* name;
    core::UpAnnsOptions opts;
  };
  core::UpAnnsOptions naive = core::UpAnnsOptions::pim_naive();
  naive.n_dpus = 64;
  naive.nprobe = 16;

  core::UpAnnsOptions opt1 = naive;
  opt1.opt_placement = true;
  opt1.opt_scheduling = true;

  core::UpAnnsOptions opt13 = opt1;   // + direct tokens & CAE (Opt3)
  opt13.naive_raw_codes = false;
  opt13.opt_cae = true;

  core::UpAnnsOptions full = opt13;   // + pruned top-k merge (Opt4)
  full.opt_prune_topk = true;

  const Step steps[] = {
      {"PIM-naive (Opt2 only)", naive},
      {"+ Opt1 placement/scheduling", opt1},
      {"+ Opt3 co-occurrence encoding", opt13},
      {"+ Opt4 top-k pruning (full)", full},
  };

  // Extrapolate the distance stage to a 1B-point / 7-DIMM deployment (see
  // DESIGN.md): at demo scale LUT construction dominates and hides the
  // placement/encoding effects the paper measures.
  const double per_list_factor =
      (1e9 / 4096.0) /
      (static_cast<double>(n) / static_cast<double>(index.n_clusters()));
  const double dpu_factor = 64.0 / 896.0;

  std::printf("\n%-32s %10s %9s %8s %8s %8s %8s\n", "configuration",
              "QPS@1B", "balance", "LUT%", "dist%", "topk%", "xfer%");
  std::vector<common::Neighbor> reference;
  for (const Step& step : steps) {
    core::UpAnnsBackend backend(index, stats, step.opts, step.name);
    // dpu_factor = 64/896 implies the 896-DPU target for power accounting.
    const auto r = backend.search(wl.queries).at_scale(per_list_factor, dpu_factor);
    const auto s = metrics::shares(r.times);
    std::printf("%-32s %10.1f %9.2f %8.1f %8.1f %8.1f %8.1f\n", step.name,
                r.qps, r.pim->schedule_balance, s.lut_build, s.distance_calc,
                s.topk, s.transfer);
    if (reference.empty()) {
      reference = r.neighbors[0];
    } else if (!(r.neighbors[0] == reference)) {
      // Distances are quantized identically in all modes; ties aside, the
      // retrieved sets match.
      std::printf("  (note: top list differs from naive only by ties)\n");
    }
  }
  std::printf("\nEach row keeps retrieval results identical; only the time "
              "distribution changes.\n");
  return 0;
}
