// Recommendation-serving scenario (paper Sec 1: real-time recommendation is
// the other headline UpANNS workload, e.g. ByteDance-style vector retrieval).
//
// Item embeddings (SIFT-like) are indexed once; user requests arrive in
// batches with Zipf-distributed interest. The example compares the CPU
// baseline and UpANNS on the simulated 7-DIMM system across batch sizes and
// reports throughput, energy efficiency (QPS/W) and hardware cost
// efficiency (QPS/$) — the production metrics the paper argues with.
//
//   ./examples/recommendation [n_items]
#include <cstdio>
#include <cstdlib>

#include "baselines/cpu_cost_model.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "data/query_workload.hpp"
#include "ivf/cluster_stats.hpp"
#include "pim/energy.hpp"

using namespace upanns;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80000;
  std::printf("Recommendation demo: %zu SIFT-like item embeddings\n", n);

  data::Dataset items = data::generate_synthetic(data::sift1b_like(n));
  ivf::IvfBuildOptions build;
  build.n_clusters = 128;
  build.pq_m = 16;
  ivf::IvfIndex index = ivf::IvfIndex::build(items, build);

  const std::size_t nprobe = 16;
  const std::size_t k = 20;  // items per recommendation slate

  // Historical traffic drives placement.
  data::WorkloadSpec hist;
  hist.n_queries = 512;
  hist.seed = 1;
  const auto hist_wl = data::generate_workload(items, hist);
  const auto stats = ivf::collect_stats(
      index, ivf::filter_batch(index, hist_wl.queries, nprobe));

  core::UpAnnsOptions opts = core::UpAnnsOptions::upanns();
  opts.n_dpus = 128;
  opts.nprobe = nprobe;
  opts.k = k;
  auto pim = core::make_backend(core::BackendKind::kUpAnns, index, stats, opts);
  auto cpu = core::make_backend(core::BackendKind::kCpuIvfpq, index, stats, opts);

  // Catalogue-scale extrapolation: a production catalogue has ~1B items; at
  // demo scale the CPU scans from cache, which is not the regime the paper
  // (or production) cares about. See DESIGN.md for the linear-work rule.
  const double per_list_factor =
      (1e9 / 4096.0) /
      (static_cast<double>(n) / static_cast<double>(index.n_clusters()));

  std::printf("\n(1B-item catalogue equivalents, 7 UPMEM DIMMs vs Table-1 CPU)\n");
  std::printf("%-8s %14s %14s %12s %12s %14s\n", "batch", "CPU_QPS",
              "UpANNS_QPS", "CPU_QPS/W", "PIM_QPS/W", "PIM_QPS_per_$");
  for (const std::size_t batch : {16u, 64u, 256u}) {
    data::WorkloadSpec spec;
    spec.n_queries = batch;
    spec.seed = 10 + batch;
    const auto wl = data::generate_workload(items, spec);

    const auto cpu_res = cpu->search(wl.queries);
    // dpu_factor = 128/896 implies the 896-DPU target for power accounting.
    const auto pim_res =
        pim->search(wl.queries).at_scale(per_list_factor, opts.n_dpus / 896.0);

    auto cpu_profile = cpu_res.cpu->profile;
    cpu_profile.total_candidates = static_cast<std::size_t>(
        static_cast<double>(cpu_profile.total_candidates) * per_list_factor);
    cpu_profile.dataset_n = 1'000'000'000;
    cpu_profile.n_clusters = 4096;
    const double cpu_qps =
        static_cast<double>(batch) /
        baselines::CpuCostModel::stage_times(cpu_profile).total();

    std::printf("%-8zu %14.1f %14.1f %12.2f %12.2f %14.4f\n", batch, cpu_qps,
                pim_res.qps,
                pim::qps_per_watt(cpu_qps, pim::Platform::kCpu),
                pim_res.qps_per_watt,
                pim_res.qps / pim::platform_price_usd(pim::Platform::kPim,
                                                      896));
  }

  // One concrete slate.
  data::WorkloadSpec one;
  one.n_queries = 1;
  one.seed = 99;
  const auto wl = data::generate_workload(items, one);
  const auto r = pim->search(wl.queries);
  std::printf("\nslate for user 0 (item id : distance):\n");
  for (const auto& nb : r.neighbors[0]) {
    std::printf("  %8u : %.1f\n", nb.id, nb.dist);
  }
  std::printf("\nNote: absolute QPS here is simulated time at demo scale; "
              "bench/fig10* reproduces the paper's billion-scale figures.\n");
  return 0;
}
